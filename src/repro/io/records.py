"""Recording containers and on-disk persistence.

A :class:`Recording` is the unit every stage of the system exchanges:
synthesizers produce them, device models transform them, detectors and
the experiment runner consume them.  It bundles equal-length sampled
channels with a sampling rate, ground-truth/derived annotations and
free-form metadata, and round-trips losslessly through ``.npz`` files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, SignalError

__all__ = ["Recording"]


@dataclass
class Recording:
    """A multichannel sampled recording with annotations.

    Parameters
    ----------
    fs:
        Sampling rate in Hz, shared by every channel.
    signals:
        Mapping of channel name to 1-D float array; all channels must
        have the same length.  Conventional names used across the
        library: ``"ecg"`` (millivolt), ``"z"`` (measured impedance,
        ohm), ``"icg"`` (-dZ/dt, ohm/s).
    annotations:
        Mapping of annotation name to 1-D float array (event times in
        seconds, per-beat values, ...).  Lengths are annotation-specific.
    meta:
        Scalar metadata (subject id, position, injection frequency,
        ground-truth parameters, ...).  Values must be str/int/float/bool
        so the container serialises cleanly.
    """

    fs: float
    signals: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fs <= 0:
            raise ConfigurationError(f"fs must be positive, got {self.fs}")
        if not self.signals:
            raise ConfigurationError("a recording needs at least one channel")
        lengths = set()
        clean_signals = {}
        for name, data in self.signals.items():
            arr = np.asarray(data, dtype=float)
            if arr.ndim != 1:
                raise SignalError(
                    f"channel {name!r} must be 1-D, got shape {arr.shape}")
            if arr.size == 0:
                raise SignalError(f"channel {name!r} is empty")
            clean_signals[name] = arr
            lengths.add(arr.size)
        if len(lengths) != 1:
            raise SignalError(
                f"all channels must share one length, got {sorted(lengths)}")
        self.signals = clean_signals
        self.annotations = {
            name: np.atleast_1d(np.asarray(vals, dtype=float))
            for name, vals in self.annotations.items()
        }
        for key, value in self.meta.items():
            if not isinstance(value, (str, int, float, bool, np.integer,
                                      np.floating)):
                raise ConfigurationError(
                    f"meta[{key!r}] must be a scalar, got {type(value)}")

    # -- basic properties --------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples in every channel."""
        return next(iter(self.signals.values())).size

    @property
    def duration_s(self) -> float:
        """Recording duration in seconds."""
        return self.n_samples / self.fs

    @property
    def time_s(self) -> np.ndarray:
        """Time axis in seconds (starts at 0)."""
        return np.arange(self.n_samples) / self.fs

    def channel(self, name: str) -> np.ndarray:
        """A channel by name; raises :class:`SignalError` when absent."""
        if name not in self.signals:
            raise SignalError(
                f"no channel {name!r}; available: {sorted(self.signals)}")
        return self.signals[name]

    def annotation(self, name: str) -> np.ndarray:
        """An annotation by name; raises :class:`SignalError` when absent."""
        if name not in self.annotations:
            raise SignalError(
                f"no annotation {name!r}; available: "
                f"{sorted(self.annotations)}")
        return self.annotations[name]

    def with_channel(self, name: str, data) -> "Recording":
        """A copy of this recording with one channel added/replaced."""
        signals = dict(self.signals)
        signals[name] = np.asarray(data, dtype=float)
        return Recording(self.fs, signals, dict(self.annotations),
                         dict(self.meta))

    def slice_time(self, start_s: float, stop_s: float) -> "Recording":
        """A time-sliced copy.

        Annotations holding event *timestamps* — names ending in
        ``_times_s`` by convention — are shifted and cropped; all other
        annotations (per-beat intervals etc.) are kept verbatim.
        """
        if not 0.0 <= start_s < stop_s:
            raise ConfigurationError(
                f"need 0 <= start < stop, got [{start_s}, {stop_s}]")
        i0 = int(round(start_s * self.fs))
        i1 = min(int(round(stop_s * self.fs)), self.n_samples)
        if i1 - i0 < 2:
            raise SignalError("slice selects fewer than two samples")
        signals = {k: v[i0:i1] for k, v in self.signals.items()}
        annotations = {}
        for name, values in self.annotations.items():
            if name.endswith("_times_s"):
                kept = values[(values >= start_s) & (values < stop_s)]
                annotations[name] = kept - start_s
            else:
                annotations[name] = values
        return Recording(self.fs, signals, annotations, dict(self.meta))

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> Path:
        """Serialise to a compressed ``.npz`` file and return its path."""
        path = Path(path)
        payload = {"__fs__": np.asarray(self.fs)}
        for name, data in self.signals.items():
            payload[f"sig::{name}"] = data
        for name, data in self.annotations.items():
            payload[f"ann::{name}"] = data
        for key, value in self.meta.items():
            payload[f"meta::{key}"] = np.asarray(value)
        np.savez_compressed(path, **payload)
        # numpy appends .npz to bare names; report the real location.
        return path if str(path).endswith(".npz") else Path(f"{path}.npz")

    @classmethod
    def load(cls, path) -> "Recording":
        """Load a recording previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            # numpy appends .npz when saving to a bare name
            alt = path.with_name(path.name + ".npz")
            if alt.exists():
                path = alt
            else:
                raise ConfigurationError(f"no recording file at {path}")
        with np.load(path, allow_pickle=False) as data:
            fs = float(data["__fs__"])
            signals, annotations, meta = {}, {}, {}
            for key in data.files:
                if key.startswith("sig::"):
                    signals[key[5:]] = data[key]
                elif key.startswith("ann::"):
                    annotations[key[5:]] = data[key]
                elif key.startswith("meta::"):
                    value = data[key]
                    meta[key[6:]] = (value.item() if value.ndim == 0
                                     else value.tolist())
        return cls(fs, signals, annotations, meta)

    def export_csv(self, path) -> Path:
        """Write the channels as a CSV with a time column (for external
        plotting tools).  Annotations/meta are not included."""
        path = Path(path)
        names = sorted(self.signals)
        header = ",".join(["time_s"] + names)
        table = np.column_stack([self.time_s]
                                + [self.signals[n] for n in names])
        np.savetxt(path, table, delimiter=",", header=header, comments="")
        return path
