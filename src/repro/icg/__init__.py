"""ICG processing: conditioning, characteristic points, ensemble
averaging and hemodynamic parameter estimation."""

from repro.icg.ensemble import (
    EnsembleBeat,
    EnsembleConfig,
    ensemble_average,
    extract_beats,
)
from repro.icg.batch import BeatLandmarks, detect_all_points_batched
from repro.icg.hemodynamics import (
    BLOOD_RESISTIVITY_OHM_CM,
    BeatHemodynamics,
    BeatHemodynamicsSeries,
    HemodynamicsEstimator,
    SystolicIntervals,
    kubicek_stroke_volume_ml,
    sramek_bernstein_stroke_volume_ml,
    systolic_intervals,
    systolic_intervals_from_landmarks,
    thoracic_fluid_content,
)
from repro.icg.points import (
    BeatPoints,
    PointConfig,
    detect_all_points,
    detect_beat_points,
    set_point_backend,
    use_point_backend,
)
from repro.icg.preprocessing import (
    IcgFilterConfig,
    condition_icg,
    highpass,
    icg_from_impedance,
    lowpass,
)

__all__ = [
    "IcgFilterConfig", "lowpass", "highpass", "condition_icg",
    "icg_from_impedance",
    "PointConfig", "BeatPoints", "detect_beat_points", "detect_all_points",
    "BeatLandmarks", "detect_all_points_batched", "set_point_backend",
    "use_point_backend",
    "EnsembleConfig", "EnsembleBeat", "ensemble_average", "extract_beats",
    "SystolicIntervals", "systolic_intervals",
    "systolic_intervals_from_landmarks", "BeatHemodynamics",
    "BeatHemodynamicsSeries",
    "HemodynamicsEstimator", "kubicek_stroke_volume_ml",
    "sramek_bernstein_stroke_volume_ml", "thoracic_fluid_content",
    "BLOOD_RESISTIVITY_OHM_CM",
]
