"""Beat ensemble averaging.

The correlation study (Tables II-IV) compares the *morphology* of the
cardiac impedance waveform seen by the touch device against the
thoracic reference.  Individual beats are noisy; the standard tool is
the ensemble average: each RR interval is resampled to a common length
(normalised cardiac phase), outlier beats are rejected by correlation
against the median template, and the survivors are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioimpedance.analysis import pearson_correlation
from repro.dsp.resample import resample_to_length
from repro.errors import ConfigurationError, SignalError

__all__ = ["EnsembleConfig", "EnsembleBeat", "ensemble_average",
           "extract_beats"]


@dataclass(frozen=True)
class EnsembleConfig:
    """Parameters of the ensemble averager."""

    n_phase_samples: int = 100
    min_beats: int = 5
    #: Beats whose correlation against the median template falls below
    #: this are dropped (grip adjustments, coughs, ...).
    outlier_correlation: float = 0.5

    def __post_init__(self) -> None:
        if self.n_phase_samples < 10:
            raise ConfigurationError("need at least 10 phase samples")
        if self.min_beats < 2:
            raise ConfigurationError("need at least 2 beats")
        if not -1.0 <= self.outlier_correlation < 1.0:
            raise ConfigurationError(
                "outlier_correlation must be in [-1, 1)")


@dataclass(frozen=True)
class EnsembleBeat:
    """Result of ensemble averaging.

    ``waveform`` is the mean beat over normalised cardiac phase
    (``n_phase_samples`` long); ``n_used``/``n_total`` record the
    outlier rejection, and ``beat_matrix`` keeps the per-beat rows for
    dispersion analyses.
    """

    waveform: np.ndarray
    n_used: int
    n_total: int
    beat_matrix: np.ndarray

    @property
    def rejection_fraction(self) -> float:
        """Fraction of beats discarded as outliers."""
        return 1.0 - self.n_used / self.n_total if self.n_total else 0.0


def extract_beats(signal, fs: float, r_indices,
                  n_phase_samples: int = 100) -> np.ndarray:
    """Phase-normalised beat matrix: one row per RR interval,
    resampled to ``n_phase_samples`` columns."""
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise SignalError("expected a 1-D signal")
    r_indices = np.asarray(r_indices, dtype=int)
    if r_indices.size < 2:
        raise SignalError("need at least two R peaks")
    rows = []
    for lo, hi in zip(r_indices[:-1], r_indices[1:]):
        if lo < 0 or hi > signal.size or hi - lo < 4:
            continue
        rows.append(resample_to_length(signal[lo:hi], n_phase_samples))
    if not rows:
        raise SignalError("no complete beats inside the signal")
    return np.vstack(rows)


def ensemble_average(signal, fs: float, r_indices,
                     config: EnsembleConfig = None) -> EnsembleBeat:
    """Outlier-robust ensemble average over normalised cardiac phase."""
    config = config or EnsembleConfig()
    beats = extract_beats(signal, fs, r_indices, config.n_phase_samples)
    if beats.shape[0] < config.min_beats:
        raise SignalError(
            f"only {beats.shape[0]} beats available, need "
            f">= {config.min_beats}")
    template = np.median(beats, axis=0)
    keep = []
    for row in beats:
        try:
            corr = pearson_correlation(row, template)
        except SignalError:
            corr = -1.0  # constant beat: certainly an artifact
        keep.append(corr >= config.outlier_correlation)
    keep = np.asarray(keep)
    if keep.sum() < config.min_beats:
        # Too aggressive for this recording: fall back to all beats
        # rather than fail — the caller sees the rejection stats.
        keep = np.ones(beats.shape[0], dtype=bool)
    used = beats[keep]
    return EnsembleBeat(
        waveform=used.mean(axis=0),
        n_used=int(keep.sum()),
        n_total=int(beats.shape[0]),
        beat_matrix=beats,
    )
