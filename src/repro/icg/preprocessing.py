"""ICG conditioning: derivative, the paper's 20 Hz low-pass, and the
0.8 Hz respiratory high-pass.

Section IV-A.2: after inspecting the ICG spectrum the authors found no
significant content above 20 Hz and chose a zero-phase low-pass
Butterworth at 20 Hz.  The paper does not state the order; we default
to 4 (a common embedded choice — two biquads) and expose it.

The paper also states the ICG signal spans 0.8-20 Hz while respiration
occupies 0.04-2 Hz; restricting the conditioned signal to its stated
band requires a high-pass at the 0.8 Hz lower edge, otherwise
respiratory minima in late diastole masquerade as X points.  The
high-pass is on by default and can be disabled to study exactly that
failure mode (see the filter-ablation bench).

The ICG itself is defined as ``ICG = -dZ/dt``: the device measures the
demodulated impedance Z(t) and differentiates digitally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp import derivative as _derivative
from repro.dsp import iir as _iir
from repro.errors import ConfigurationError, SignalError

__all__ = ["IcgFilterConfig", "design_lowpass_sos", "design_highpass_sos",
           "lowpass", "highpass", "condition_icg",
           "condition_icg_wavelet", "icg_from_impedance",
           "icg_from_impedance_batch"]


@dataclass(frozen=True)
class IcgFilterConfig:
    """Parameters of the ICG conditioning chain.

    ``highpass_hz=None`` disables the respiratory high-pass and leaves
    only the paper's literal 20 Hz low-pass.
    """

    cutoff_hz: float = 20.0
    order: int = 4
    highpass_hz: Optional[float] = 0.8
    highpass_order: int = 2

    def __post_init__(self) -> None:
        if self.cutoff_hz <= 0:
            raise ConfigurationError("cut-off must be positive")
        if self.order < 1 or self.highpass_order < 1:
            raise ConfigurationError("filter orders must be >= 1")
        if self.highpass_hz is not None:
            if not 0.0 < self.highpass_hz < self.cutoff_hz:
                raise ConfigurationError(
                    f"high-pass edge must sit in (0, {self.cutoff_hz}), "
                    f"got {self.highpass_hz}")


def design_lowpass_sos(fs: float,
                       config: Optional[IcgFilterConfig] = None,
                       ) -> np.ndarray:
    """SOS of the low-pass Butterworth for ``(fs, config)``.

    The canonical design expression shared by the direct filtering
    path and the pipeline's filter-design cache.
    """
    config = config or IcgFilterConfig()
    return _iir.butter_lowpass(config.order, config.cutoff_hz, fs)


def design_highpass_sos(fs: float,
                        config: Optional[IcgFilterConfig] = None,
                        ) -> Optional[np.ndarray]:
    """SOS of the respiratory high-pass for ``(fs, config)``; ``None``
    when the high-pass is disabled (canonical, as
    :func:`design_lowpass_sos`)."""
    config = config or IcgFilterConfig()
    if config.highpass_hz is None:
        return None
    return _iir.butter_highpass(config.highpass_order,
                                config.highpass_hz, fs)


def lowpass(icg, fs: float, config: Optional[IcgFilterConfig] = None,
            sos: Optional[np.ndarray] = None) -> np.ndarray:
    """Zero-phase low-pass Butterworth at 20 Hz (paper Section IV-A.2).

    A pre-designed ``sos`` (e.g. from the pipeline's filter-design
    cache) skips the Butterworth design; it must match ``(fs, config)``
    — the caller owns that invariant.
    """
    config = config or IcgFilterConfig()
    if config.cutoff_hz >= fs / 2.0:
        raise ConfigurationError(
            f"cut-off {config.cutoff_hz} Hz does not fit below fs/2 "
            f"= {fs / 2.0} Hz")
    if sos is None:
        sos = design_lowpass_sos(fs, config)
    return _iir.sosfiltfilt(sos, icg)


def highpass(icg, fs: float, config: Optional[IcgFilterConfig] = None,
             sos: Optional[np.ndarray] = None) -> np.ndarray:
    """Zero-phase high-pass at the ICG band's 0.8 Hz lower edge
    (``sos`` as in :func:`lowpass`)."""
    config = config or IcgFilterConfig()
    if config.highpass_hz is None:
        return np.asarray(icg, dtype=float).copy()
    if sos is None:
        sos = design_highpass_sos(fs, config)
    return _iir.sosfiltfilt(sos, icg)


def condition_icg(icg, fs: float,
                  config: Optional[IcgFilterConfig] = None,
                  lowpass_sos: Optional[np.ndarray] = None,
                  highpass_sos: Optional[np.ndarray] = None) -> np.ndarray:
    """Full ICG conditioning: 20 Hz low-pass plus 0.8 Hz high-pass."""
    config = config or IcgFilterConfig()
    return highpass(lowpass(icg, fs, config, sos=lowpass_sos), fs,
                    config, sos=highpass_sos)


def condition_icg_wavelet(icg, fs: float, cutoff_low_hz: float = 0.8,
                          wavelet: str = "db4",
                          threshold_scale: float = 1.0) -> np.ndarray:
    """Wavelet alternative to the filter chain (related-work methods).

    VisuShrink denoising handles broadband/motion noise (replacing the
    20 Hz low-pass) and approximation-band suppression removes the
    respiratory baseline (replacing the 0.8 Hz high-pass) — the
    approach of the paper's references [15]-[17], provided for the
    conditioning ablation bench.
    """
    from repro.dsp import wavelet as _wavelet

    denoised = _wavelet.denoise(icg, wavelet,
                                threshold_scale=threshold_scale)
    return _wavelet.suppress_low_frequency(denoised, fs, cutoff_low_hz,
                                           wavelet)


def icg_from_impedance(z, fs: float,
                       config: Optional[IcgFilterConfig] = None,
                       method: str = "filter",
                       lowpass_sos: Optional[np.ndarray] = None,
                       highpass_sos: Optional[np.ndarray] = None,
                       ) -> np.ndarray:
    """Compute the conditioned ICG from a measured impedance trace.

    ``ICG = -dZ/dt`` (central difference), then the conditioning chain:
    ``method="filter"`` (the paper's zero-phase filters, default) or
    ``method="wavelet"`` (the related-work alternative).
    Differentiation amplifies high-frequency noise, which is precisely
    why the conditioning follows immediately.  Pre-designed sections
    (``lowpass_sos``/``highpass_sos``, filter method only) skip the
    Butterworth designs as in :func:`lowpass`.
    """
    if method not in ("filter", "wavelet"):
        raise ConfigurationError(
            f"method must be 'filter' or 'wavelet', got {method!r}")
    dz = _derivative.central_difference(z, fs, order=1)
    if method == "wavelet":
        config = config or IcgFilterConfig()
        return condition_icg_wavelet(
            -dz, fs, cutoff_low_hz=config.highpass_hz or 0.8)
    return condition_icg(-dz, fs, config, lowpass_sos=lowpass_sos,
                         highpass_sos=highpass_sos)


def icg_from_impedance_batch(z_rows, fs: float, lengths=None,
                             config: Optional[IcgFilterConfig] = None,
                             lowpass_sos: Optional[np.ndarray] = None,
                             highpass_sos: Optional[np.ndarray] = None,
                             ) -> np.ndarray:
    """Row-batched :func:`icg_from_impedance` (filter method only).

    ``z_rows`` is a ``(n_recordings, width)`` matrix of zero-stacked
    same-rate impedance traces, row ``i`` valid up to ``lengths[i]``.
    The central difference runs as one ``np.gradient`` over the
    leading axis — identical elementwise expressions per row — with
    each row's last valid column patched to its own one-sided stencil
    ``(z[L-1] - z[L-2]) / dx`` (the value ``np.gradient`` produces at
    a row's true end; a bitwise no-op for full-width rows).  The
    conditioning chain then runs through
    :func:`repro.dsp.iir.sosfiltfilt_batch`, bit-identical per row
    under the vectorized ``sosfilt`` backend.  Rows shorter than the
    zero-phase pad raise :class:`~repro.errors.SignalError`; the
    cohort planner routes those per-recording.  Columns beyond a
    row's length are unspecified.
    """
    from repro.dsp._signal import check_lengths as _check_lengths

    config = config or IcgFilterConfig()
    if config.cutoff_hz >= fs / 2.0:
        raise ConfigurationError(
            f"cut-off {config.cutoff_hz} Hz does not fit below fs/2 "
            f"= {fs / 2.0} Hz")
    z = np.asarray(z_rows, dtype=float)
    lengths = _check_lengths(z, lengths)
    if lengths.size and int(lengths.min()) < 3:
        raise SignalError(
            "batched ICG derivative needs >= 3 samples per row")
    dx = 1.0 / fs
    dz = np.gradient(z, dx, axis=1)
    rows = np.arange(z.shape[0])
    last = lengths - 1
    dz[rows, last] = (z[rows, last] - z[rows, last - 1]) / dx
    icg = -dz
    if lowpass_sos is None:
        lowpass_sos = design_lowpass_sos(fs, config)
    icg = _iir.sosfiltfilt_batch(lowpass_sos, icg, lengths=lengths)
    if config.highpass_hz is None:
        return icg
    if highpass_sos is None:
        highpass_sos = design_highpass_sos(fs, config)
    return _iir.sosfiltfilt_batch(highpass_sos, icg, lengths=lengths)
