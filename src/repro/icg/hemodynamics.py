"""Hemodynamic parameter estimation from detected ICG points.

Implements the paper's Section IV-B quantities and the two classic
stroke-volume estimators it cites:

* systolic time intervals — LVET (B to X) and PEP (ECG R to ICG B);
* stroke volume via Kubicek et al. (1966):
  ``SV = rho * (L / Z0)^2 * LVET * dZdt_max``;
* stroke volume via Sramek-Bernstein (as in Thomas 1992):
  ``SV = delta * ((0.17 H)^3 / 4.25) * (dZdt_max / Z0) * LVET``;
* cardiac output ``CO = SV * HR``;
* thoracic fluid content ``TFC = 1000 / Z0`` (the fluid-status index
  used by the CHF-monitoring literature the paper builds on).

Stroke-volume formulas are calibrated for *thoracic* measurements; when
fed the touch device's hand-to-hand Z0 they need the pathway's
calibration factor — see :meth:`HemodynamicsEstimator.with_calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.icg.points import BeatPoints

__all__ = [
    "SystolicIntervals",
    "systolic_intervals",
    "systolic_intervals_from_landmarks",
    "BeatHemodynamics",
    "BeatHemodynamicsSeries",
    "HemodynamicsEstimator",
    "kubicek_stroke_volume_ml",
    "sramek_bernstein_stroke_volume_ml",
    "thoracic_fluid_content",
]

#: Resistivity of blood in ohm*cm, the classic Kubicek constant.
BLOOD_RESISTIVITY_OHM_CM = 135.0


@dataclass(frozen=True)
class SystolicIntervals:
    """Per-recording summary of the systolic time intervals."""

    pep_s: np.ndarray
    lvet_s: np.ndarray

    @property
    def mean_pep_s(self) -> float:
        """Mean pre-ejection period."""
        return float(self.pep_s.mean())

    @property
    def mean_lvet_s(self) -> float:
        """Mean left-ventricular ejection time."""
        return float(self.lvet_s.mean())

    @property
    def pep_over_lvet(self) -> float:
        """The PEP/LVET ratio (systolic performance index)."""
        return self.mean_pep_s / self.mean_lvet_s

    @property
    def n_beats(self) -> int:
        """Number of beats contributing to the summary."""
        return int(self.pep_s.size)


def systolic_intervals(points, fs: float,
                       max_pep_s: float = 0.30,
                       max_lvet_s: float = 0.60) -> SystolicIntervals:
    """LVET/PEP per beat from detected points, with gross outliers
    (detection failures that slipped through) removed."""
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    if not points:
        raise SignalError("no detected beats supplied")
    pep = np.array([p.pep_s(fs) for p in points])
    lvet = np.array([p.lvet_s(fs) for p in points])
    valid = ((pep > 0.0) & (pep <= max_pep_s)
             & (lvet > 0.0) & (lvet <= max_lvet_s))
    if not valid.any():
        raise SignalError("no physiologically valid beats after gating")
    return SystolicIntervals(pep_s=pep[valid], lvet_s=lvet[valid])


def systolic_intervals_from_landmarks(landmarks, fs: float,
                                      max_pep_s: float = 0.30,
                                      max_lvet_s: float = 0.60,
                                      ) -> SystolicIntervals:
    """Beat-batched twin of :func:`systolic_intervals`.

    Consumes the landmark *columns* of a
    :class:`~repro.icg.batch.BeatLandmarks` instead of gathering
    per-beat fields from a points list — one integer subtraction and
    one division for the whole recording.  The per-element arithmetic
    is the same as ``BeatPoints.pep_s``/``lvet_s`` (exact integer
    differences divided by ``fs``), so the output is bit-identical to
    the per-beat path.
    """
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    if landmarks.n_beats == 0:
        raise SignalError("no detected beats supplied")
    pep = (landmarks.b - landmarks.r) / fs
    lvet = (landmarks.x - landmarks.b) / fs
    valid = ((pep > 0.0) & (pep <= max_pep_s)
             & (lvet > 0.0) & (lvet <= max_lvet_s))
    if not valid.any():
        raise SignalError("no physiologically valid beats after gating")
    return SystolicIntervals(pep_s=pep[valid], lvet_s=lvet[valid])


def kubicek_stroke_volume_ml(z0_ohm: float, lvet_s: float,
                             dzdt_max_ohm_s: float,
                             electrode_distance_cm: float,
                             rho_ohm_cm: float = BLOOD_RESISTIVITY_OHM_CM,
                             ) -> float:
    """Kubicek stroke volume in millilitres.

    ``SV = rho * (L / Z0)^2 * LVET * dZdt_max`` with L the inner
    electrode distance.
    """
    if z0_ohm <= 0 or lvet_s <= 0 or electrode_distance_cm <= 0:
        raise ConfigurationError(
            "Z0, LVET and electrode distance must be positive")
    if dzdt_max_ohm_s <= 0:
        raise ConfigurationError("dZ/dt max must be positive")
    return float(rho_ohm_cm * (electrode_distance_cm / z0_ohm) ** 2
                 * lvet_s * dzdt_max_ohm_s)


def sramek_bernstein_stroke_volume_ml(z0_ohm: float, lvet_s: float,
                                      dzdt_max_ohm_s: float,
                                      height_cm: float,
                                      delta: float = 1.0) -> float:
    """Sramek-Bernstein stroke volume in millilitres.

    ``SV = delta * ((0.17 H)^3 / 4.25) * LVET * dZdt_max / Z0`` where H
    is the subject height and ``delta`` Bernstein's body-habitus
    correction (1 for normal build).
    """
    if z0_ohm <= 0 or lvet_s <= 0 or height_cm <= 0:
        raise ConfigurationError("Z0, LVET and height must be positive")
    if dzdt_max_ohm_s <= 0:
        raise ConfigurationError("dZ/dt max must be positive")
    if delta <= 0:
        raise ConfigurationError("delta must be positive")
    vept = (0.17 * height_cm) ** 3 / 4.25  # volume of electrically
    return float(delta * vept * lvet_s * dzdt_max_ohm_s / z0_ohm)


def thoracic_fluid_content(z0_ohm: float) -> float:
    """Thoracic fluid content, ``1000 / Z0`` (1/kOhm).

    Rising TFC means fluid accumulation — the early-warning trend for
    CHF decompensation the paper's introduction motivates.
    """
    if z0_ohm <= 0:
        raise ConfigurationError("Z0 must be positive")
    return 1000.0 / z0_ohm


@dataclass(frozen=True)
class BeatHemodynamics:
    """Full per-beat hemodynamic estimate."""

    pep_s: float
    lvet_s: float
    hr_bpm: float
    dzdt_max_ohm_s: float
    sv_kubicek_ml: float
    sv_sramek_ml: float
    co_kubicek_l_min: float
    co_sramek_l_min: float


@dataclass(frozen=True)
class BeatHemodynamicsSeries:
    """Per-beat hemodynamics as flat columns — the beat-batched twin
    of a ``list[BeatHemodynamics]``.

    Produced in one vectorized pass by
    :meth:`HemodynamicsEstimator.estimate_series`; monitoring
    consumers (daily aggregation, trend tracking) reduce these columns
    directly instead of gathering fields beat by beat.
    """

    pep_s: np.ndarray
    lvet_s: np.ndarray
    hr_bpm: np.ndarray
    dzdt_max_ohm_s: np.ndarray
    sv_kubicek_ml: np.ndarray
    sv_sramek_ml: np.ndarray
    co_kubicek_l_min: np.ndarray
    co_sramek_l_min: np.ndarray

    @property
    def n_beats(self) -> int:
        """Number of beats in the series."""
        return int(self.pep_s.size)

    def to_beats(self) -> list:
        """The equivalent ``list[BeatHemodynamics]`` (legacy contract)."""
        return [
            BeatHemodynamics(
                pep_s=float(self.pep_s[k]),
                lvet_s=float(self.lvet_s[k]),
                hr_bpm=float(self.hr_bpm[k]),
                dzdt_max_ohm_s=float(self.dzdt_max_ohm_s[k]),
                sv_kubicek_ml=float(self.sv_kubicek_ml[k]),
                sv_sramek_ml=float(self.sv_sramek_ml[k]),
                co_kubicek_l_min=float(self.co_kubicek_l_min[k]),
                co_sramek_l_min=float(self.co_sramek_l_min[k]),
            )
            for k in range(self.pep_s.size)
        ]


class HemodynamicsEstimator:
    """Turns detected beats into hemodynamic parameters.

    Parameters
    ----------
    fs:
        Sampling rate of the analysed signals.
    z0_ohm:
        Mean base impedance of the recording (thoracic-equivalent; see
        ``calibration``).
    height_cm:
        Subject height (Sramek-Bernstein needs it).
    electrode_distance_cm:
        Inner-electrode distance for Kubicek; defaults to 0.17 * height
        when omitted (the usual approximation).
    z0_calibration, dzdt_calibration:
        Multipliers converting the *measured* Z0 and dZ/dt to the
        thoracic-equivalent scale the SV formulas assume.  Both are 1.0
        for the traditional setup.  The touch device needs two separate
        factors because its pathway scales the base impedance (arms in
        series: Z0 is ~17x thoracic) and the cardiac pulse (coupling:
        dZ/dt is ~0.3x thoracic) by *different* amounts — a single
        scalar cannot fix both, which is exactly why the paper reports
        systolic time intervals (calibration-free) rather than absolute
        SV from the device.
    """

    def __init__(self, fs: float, z0_ohm: float, height_cm: float,
                 electrode_distance_cm: Optional[float] = None,
                 z0_calibration: float = 1.0,
                 dzdt_calibration: float = 1.0) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        if z0_ohm <= 0:
            raise ConfigurationError("Z0 must be positive")
        if height_cm <= 0:
            raise ConfigurationError("height must be positive")
        if z0_calibration <= 0 or dzdt_calibration <= 0:
            raise ConfigurationError("calibrations must be positive")
        self.fs = float(fs)
        self.z0_ohm = float(z0_ohm)
        self.height_cm = float(height_cm)
        self.electrode_distance_cm = float(
            electrode_distance_cm if electrode_distance_cm is not None
            else 0.17 * height_cm)
        self.z0_calibration = float(z0_calibration)
        self.dzdt_calibration = float(dzdt_calibration)

    def with_calibration(self, z0_calibration: float,
                         dzdt_calibration: float) -> "HemodynamicsEstimator":
        """Copy of this estimator with different pathway calibrations."""
        return HemodynamicsEstimator(self.fs, self.z0_ohm, self.height_cm,
                                     self.electrode_distance_cm,
                                     z0_calibration, dzdt_calibration)

    def estimate_beat(self, point: BeatPoints, rr_s: float, icg,
                      ) -> BeatHemodynamics:
        """Hemodynamics of one beat given its points and RR interval."""
        if rr_s <= 0:
            raise ConfigurationError("RR interval must be positive")
        icg = np.asarray(icg, dtype=float)
        pep = point.pep_s(self.fs)
        lvet = point.lvet_s(self.fs)
        if not 0 <= point.c_index < icg.size:
            raise SignalError("C index outside the supplied ICG")
        dzdt_max = float(icg[point.c_index]) * self.dzdt_calibration
        z0_equivalent = self.z0_ohm * self.z0_calibration
        if dzdt_max <= 0:
            raise SignalError("non-positive dZ/dt maximum at C")
        hr = 60.0 / rr_s
        sv_k = kubicek_stroke_volume_ml(z0_equivalent, lvet, dzdt_max,
                                        self.electrode_distance_cm)
        sv_s = sramek_bernstein_stroke_volume_ml(z0_equivalent, lvet,
                                                 dzdt_max, self.height_cm)
        return BeatHemodynamics(
            pep_s=pep, lvet_s=lvet, hr_bpm=hr, dzdt_max_ohm_s=dzdt_max,
            sv_kubicek_ml=sv_k, sv_sramek_ml=sv_s,
            co_kubicek_l_min=sv_k * hr / 1000.0,
            co_sramek_l_min=sv_s * hr / 1000.0,
        )

    def estimate_all(self, points, icg) -> list:
        """Per-beat hemodynamics for a detected-point sequence.

        RR intervals are taken between consecutive R indices; the last
        beat is dropped when no successor exists.  This per-beat loop
        is the parity oracle for :meth:`estimate_series`.
        """
        results = []
        for current, successor in zip(points[:-1], points[1:]):
            rr = (successor.r_index - current.r_index) / self.fs
            results.append(self.estimate_beat(current, rr, icg))
        return results

    def estimate_series(self, landmarks, icg) -> BeatHemodynamicsSeries:
        """Beat-batched hemodynamics from landmark columns.

        One vectorized pass over the landmark arrays of a
        :class:`~repro.icg.batch.BeatLandmarks` — bit-identical to
        :meth:`estimate_all` over the equivalent points list (the
        beat-independent stroke-volume prefactors are evaluated by the
        exact scalar expressions of the per-beat formulas, then applied
        elementwise in the same operation order).  Raises the same
        exception as the per-beat loop would at its first offending
        beat.
        """
        icg = np.asarray(icg, dtype=float)
        r = landmarks.r
        if r.size < 2:
            return BeatHemodynamicsSeries(*(np.empty(0),) * 8)
        rr = (r[1:] - r[:-1]) / self.fs
        b = landmarks.b[:-1]
        c = landmarks.c[:-1]
        x = landmarks.x[:-1]
        pep = (b - r[:-1]) / self.fs
        lvet = (x - b) / self.fs
        c_ok = (0 <= c) & (c < icg.size)
        if icg.size:
            dzdt = (icg[np.clip(c, 0, icg.size - 1)]
                    * self.dzdt_calibration)
        else:
            # No gather possible; every beat fails the bounds check
            # below with the per-beat loop's exact exception.
            dzdt = np.zeros(c.size)
        # The per-beat loop raises at the first beat failing a check;
        # reproduce the same exception for the same beat (comparisons
        # written exactly as the scalar checks, so NaNs behave alike).
        # Kubicek's validation covers lvet *and* the beat-independent
        # electrode distance under one message.
        sv_invalid = (lvet <= 0) | (self.electrode_distance_cm <= 0)
        bad = np.where(rr <= 0, 1,
                       np.where(~c_ok, 2,
                                np.where(dzdt <= 0, 3,
                                         np.where(sv_invalid, 4, 0))))
        if bad.any():
            first = int(bad[np.argmax(bad != 0)])
            if first == 1:
                raise ConfigurationError("RR interval must be positive")
            if first == 2:
                raise SignalError("C index outside the supplied ICG")
            if first == 3:
                raise SignalError("non-positive dZ/dt maximum at C")
            raise ConfigurationError(
                "Z0, LVET and electrode distance must be positive")
        z0_equivalent = self.z0_ohm * self.z0_calibration
        hr = 60.0 / rr
        # Scalar prefactors written exactly as the per-beat formulas
        # evaluate them, so the elementwise products round identically.
        kubicek_prefactor = (BLOOD_RESISTIVITY_OHM_CM
                             * (self.electrode_distance_cm
                                / z0_equivalent) ** 2)
        vept = (0.17 * self.height_cm) ** 3 / 4.25
        sv_k = kubicek_prefactor * lvet * dzdt
        sv_s = 1.0 * vept * lvet * dzdt / z0_equivalent
        return BeatHemodynamicsSeries(
            pep_s=pep, lvet_s=lvet, hr_bpm=hr, dzdt_max_ohm_s=dzdt,
            sv_kubicek_ml=sv_k, sv_sramek_ml=sv_s,
            co_kubicek_l_min=sv_k * hr / 1000.0,
            co_sramek_l_min=sv_s * hr / 1000.0,
        )

    def estimate_landmarks(self, landmarks, icg) -> list:
        """``list[BeatHemodynamics]`` from landmark columns — the
        batched replacement for :meth:`estimate_all` at the legacy
        list contract."""
        return self.estimate_series(landmarks, icg).to_beats()
