"""ICG characteristic-point detection (B, C, X) — the paper's core
algorithm (Section IV-C, after Carvalho et al.).

Operates beat-to-beat: the ICG between two consecutive ECG R peaks is
analysed in isolation.

* **C point** — the maximum of the ICG inside the beat.
* **B point** — the opening of the aortic valve.  First the initial
  estimate ``B0`` is found: a line is fit to the ICG samples between
  40 % and 80 % of the C amplitude on the C upstroke, and ``B0`` is that
  line's intersection with the horizontal axis.  If the second
  derivative of the ICG exhibits the ``(+,-,+,-)`` sign pattern to the
  left of C, B is the first minimum of the *third* derivative left of
  ``B0``; otherwise B is the first zero-crossing of the *first*
  derivative left of ``B0``.
* **X point** — the closure of the aortic valve.  The initial estimate
  ``X0`` is the lowest negative minimum right of C (the paper's
  adjustment); X is then the local minimum of the third derivative left
  of ``X0``.  The original Carvalho variant — searching ``X0`` within
  ``RT <= t <= 1.75 RT`` of the R peak, where RT is the ECG R-T
  interval — is provided for the ablation bench (the paper argues the
  T-wave end is unreliable, which is why they changed it).

Derivatives are Savitzky-Golay smoothed (see
:mod:`repro.dsp.derivative`): third derivatives of sampled data are
meaningless without polynomial smoothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp import derivative as _derivative
from repro.errors import ConfigurationError, DetectionError, SignalError

__all__ = [
    "PointConfig",
    "BeatPoints",
    "detect_beat_points",
    "detect_all_points",
    "detect_all_landmarks",
    "set_point_backend",
    "use_point_backend",
]


@dataclass(frozen=True)
class PointConfig:
    """Tunables of the characteristic-point detector.

    ``x_strategy`` selects the paper's X0 ("global": lowest negative
    minimum right of C) or the original Carvalho RT-window variant
    ("rt_window", requires the beat's RT interval).
    """

    line_fit_low: float = 0.40
    line_fit_high: float = 0.80
    derivative_window_s: float = 0.044
    b_pattern_window_s: float = 0.120
    b_search_window_s: float = 0.140
    x_search_window_s: float = 0.100
    x_strategy: str = "global"
    rt_window_factor: float = 1.75
    sign_tolerance_fraction: float = 0.04
    min_c_delay_s: float = 0.04

    def __post_init__(self) -> None:
        if not 0.0 < self.line_fit_low < self.line_fit_high <= 1.0:
            raise ConfigurationError(
                "need 0 < line_fit_low < line_fit_high <= 1")
        if self.x_strategy not in ("global", "rt_window"):
            raise ConfigurationError(
                f"x_strategy must be 'global' or 'rt_window', "
                f"got {self.x_strategy!r}")
        for name in ("derivative_window_s", "b_pattern_window_s",
                     "b_search_window_s", "x_search_window_s",
                     "min_c_delay_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.rt_window_factor <= 1.0:
            raise ConfigurationError("rt_window_factor must exceed 1")
        if not 0.0 <= self.sign_tolerance_fraction < 0.5:
            raise ConfigurationError(
                "sign_tolerance_fraction must be in [0, 0.5)")


@dataclass(frozen=True)
class BeatPoints:
    """Detected landmarks of one beat (absolute sample indices).

    ``b0_index``/``x0_index`` are the initial estimates retained for
    analysis; ``pattern_found`` records which B branch fired (True: the
    second-derivative sign pattern was present and the third-derivative
    rule was used).
    """

    r_index: int
    c_index: int
    b_index: int
    x_index: int
    b0_index: float
    x0_index: int
    pattern_found: bool

    def pep_s(self, fs: float) -> float:
        """Pre-ejection period: R to B (paper Section IV-B)."""
        return (self.b_index - self.r_index) / fs

    def lvet_s(self, fs: float) -> float:
        """Left-ventricular ejection time: B to X."""
        return (self.x_index - self.b_index) / fs


def _window_derivative(window_s: float, fs: float) -> int:
    window = max(5, int(round(window_s * fs)) | 1)
    return window


def detect_beat_points(icg, fs: float, r_index: int, next_r_index: int,
                       config: Optional[PointConfig] = None,
                       rt_interval_s: Optional[float] = None) -> BeatPoints:
    """Detect B, C, X within one beat (R peak to next R peak).

    Raises :class:`DetectionError` when the beat cannot be analysed
    (degenerate geometry, C at the window edge, no negative minimum for
    X0, ...).  Callers doing batch work should use
    :func:`detect_all_points`, which collects failures instead.
    """
    icg = np.asarray(icg, dtype=float)
    if icg.ndim != 1:
        raise SignalError(f"expected 1-D ICG, got shape {icg.shape}")
    config = config or PointConfig()
    if not 0 <= r_index < next_r_index <= icg.size:
        raise DetectionError(
            f"invalid beat window [{r_index}, {next_r_index}) for signal "
            f"of {icg.size} samples")
    beat = icg[r_index:next_r_index]
    if beat.size < int(0.25 * fs):
        raise DetectionError("beat window shorter than 250 ms")

    window = _window_derivative(config.derivative_window_s, fs)
    if beat.size <= window:
        raise DetectionError("beat too short for smoothed derivatives")
    d1 = _derivative.savgol_derivative(beat, fs, window, 3, 1)
    d2 = _derivative.savgol_derivative(beat, fs, window, 4, 2)
    d3 = _derivative.savgol_derivative(beat, fs, window, 5, 3)

    # --- C point ---------------------------------------------------------
    min_c = int(config.min_c_delay_s * fs)
    c_local = min_c + int(np.argmax(beat[min_c:]))
    if c_local >= beat.size - 2 or c_local <= 1:
        raise DetectionError("C point fell on the beat-window edge")
    c_amplitude = beat[c_local]
    if c_amplitude <= 0:
        raise DetectionError("beat maximum is not positive; no C wave")

    # --- B0: 40-80 % line fit ---------------------------------------------
    b0_local = _initial_b(beat, d1, c_local, c_amplitude, fs, config)

    # --- B: sign pattern of d2 left of C ---------------------------------
    pattern_start = max(0, c_local - int(config.b_pattern_window_s * fs))
    d2_segment = d2[pattern_start:c_local + 1]
    tolerance = config.sign_tolerance_fraction * float(
        np.max(np.abs(d2_segment), initial=0.0))
    matches = _derivative.sign_pattern_positions(d2_segment, "+-+-",
                                                 tol=tolerance)
    pattern_found = matches.size > 0
    search_lo = max(0, int(np.floor(b0_local))
                    - int(config.b_search_window_s * fs))
    if pattern_found:
        b_local = _first_local_min_left(d3, int(np.floor(b0_local)),
                                        search_lo)
    else:
        d1_tolerance = 0.02 * float(np.max(np.abs(d1[:c_local + 1]),
                                           initial=0.0))
        b_local = _first_zero_cross_left(d1, int(np.floor(b0_local)),
                                         search_lo, tolerance=d1_tolerance)
    if b_local is None:
        raise DetectionError("no B candidate left of B0")
    if b_local >= c_local:
        raise DetectionError("B landed at/after C")

    # --- X0 -----------------------------------------------------------------
    x0_local = _initial_x(beat, c_local, fs, config, rt_interval_s)

    # --- X: local min of d3 left of X0 ------------------------------------
    x_lo = max(c_local + 1, x0_local - int(config.x_search_window_s * fs))
    x_local = _last_local_min_left(d3, x0_local, x_lo)
    if x_local is None:
        # A perfectly smooth trough can leave d3 monotonic over the
        # search window; fall back to X0 itself (the trough).
        x_local = x0_local
    if x_local <= c_local:
        raise DetectionError("X landed at/before C")

    return BeatPoints(
        r_index=int(r_index),
        c_index=int(r_index + c_local),
        b_index=int(r_index + b_local),
        x_index=int(r_index + x_local),
        b0_index=float(r_index + b0_local),
        x0_index=int(r_index + x0_local),
        pattern_found=bool(pattern_found),
    )


def _initial_b(beat: np.ndarray, d1: np.ndarray, c_local: int,
               c_amplitude: float, fs: float, config: PointConfig) -> float:
    """B0 from the 40-80 % upstroke line fit (fractional sample)."""
    low_level = config.line_fit_low * c_amplitude
    high_level = config.line_fit_high * c_amplitude
    # Walk left from C to find the contiguous upstroke region inside the
    # amplitude band.
    idx_high = None
    idx_low = None
    for i in range(c_local, -1, -1):
        if idx_high is None and beat[i] <= high_level:
            idx_high = i
        if beat[i] <= low_level:
            idx_low = i
            break
    if idx_high is None or idx_low is None or idx_high - idx_low < 2:
        raise DetectionError(
            "upstroke too short for the 40-80 % line fit")
    segment = slice(idx_low, idx_high + 1)
    t = np.arange(segment.start, segment.stop, dtype=float)
    slope, intercept = _derivative.fit_line(t, beat[segment])
    if slope <= 0:
        raise DetectionError("upstroke line fit has non-positive slope")
    b0 = _derivative.line_x_intercept(slope, intercept)
    # Clamp into the beat window; a B0 outside means pathological fit.
    if not 0.0 <= b0 <= c_local:
        raise DetectionError(
            f"B0 estimate {b0:.1f} outside [0, C={c_local}]")
    return float(b0)


def _initial_x(beat: np.ndarray, c_local: int, fs: float,
               config: PointConfig, rt_interval_s) -> int:
    """X0: the paper's global negative minimum right of C, or the
    Carvalho RT-window variant."""
    if config.x_strategy == "rt_window":
        if rt_interval_s is None:
            raise DetectionError(
                "x_strategy='rt_window' needs the beat's RT interval")
        lo = int(rt_interval_s * fs)
        hi = int(config.rt_window_factor * rt_interval_s * fs)
        lo = max(lo, c_local + 1)
        hi = min(hi, beat.size)
        if hi - lo < 3:
            raise DetectionError("empty RT search window for X0")
        region = beat[lo:hi]
        x0 = lo + int(np.argmin(region))
    else:
        region = beat[c_local + 1:]
        if region.size < 3:
            raise DetectionError("no room right of C for X0")
        x0 = c_local + 1 + int(np.argmin(region))
    if beat[x0] >= 0:
        raise DetectionError("X0 candidate is not a negative minimum")
    return x0


def _first_local_min_left(signal: np.ndarray, start: int,
                          stop: int) -> int:
    """Nearest strict local minimum at or left of ``start`` (>= stop)."""
    start = min(start, signal.size - 2)
    for i in range(start, max(stop, 1) - 1, -1):
        if 0 < i < signal.size - 1:
            if signal[i] < signal[i - 1] and signal[i] <= signal[i + 1]:
                return i
    return None


def _last_local_min_left(signal: np.ndarray, start: int, stop: int) -> int:
    """Same walk as :func:`_first_local_min_left` (kept separate for
    intent at the call sites: X search vs B search)."""
    return _first_local_min_left(signal, start, stop)


def _first_zero_cross_left(d1: np.ndarray, start: int, stop: int,
                           tolerance: float = 0.0) -> int:
    """Nearest zero of the first derivative left of ``start``.

    Discrete, smoothed derivatives rarely hit exactly zero, so samples
    with ``|d1| <= tolerance`` count as zero — this makes the rule find
    the *flat foot* of the upstroke (the physiological B) instead of
    walking through it to some earlier artifact.
    """
    start = min(start, d1.size - 1)
    for i in range(start, max(stop, 1) - 1, -1):
        if abs(d1[i]) <= tolerance:
            return i
        if i > 0 and d1[i - 1] * d1[i] < 0:
            return i - 1 if abs(d1[i - 1]) < abs(d1[i]) else i
    return None


#: Active implementation of :func:`detect_all_points`: ``"batched"``
#: (the vectorized beat-matrix kernels in :mod:`repro.icg.batch`,
#: default) or ``"reference"`` (the original per-beat loop, kept as
#: the parity oracle — the same pattern as the DSP layer's
#: ``set_sosfilt_backend``).
_POINT_BACKENDS = ("batched", "reference")
_point_backend = "batched"


def active_point_backend() -> str:
    """The currently selected point-detection backend name."""
    return _point_backend


def set_point_backend(name: str) -> None:
    """Select the point-detection implementation process-wide.

    ``"batched"`` (default) runs the vectorized beat-matrix kernels of
    :mod:`repro.icg.batch`; ``"reference"`` runs the original per-beat
    loop.  Both produce bit-identical output — the reference exists as
    the oracle the parity suite pins the batched path against.
    """
    global _point_backend
    if name not in _POINT_BACKENDS:
        raise ConfigurationError(
            f"unknown point-detection backend {name!r}; "
            f"choose from {_POINT_BACKENDS}")
    _point_backend = name


@contextmanager
def use_point_backend(name: str):
    """Temporarily select a point-detection backend (context manager)."""
    previous = _point_backend
    set_point_backend(name)
    try:
        yield
    finally:
        set_point_backend(previous)


def _validate_all_points_args(r_indices, rt_intervals_s) -> tuple:
    r_indices = np.asarray(r_indices, dtype=int)
    if r_indices.ndim != 1 or r_indices.size < 2:
        raise SignalError("need at least two R peaks to delimit a beat")
    if rt_intervals_s is not None:
        rt_intervals_s = np.asarray(rt_intervals_s, dtype=float)
        if rt_intervals_s.size != r_indices.size - 1:
            raise ConfigurationError(
                "rt_intervals_s must have one entry per beat "
                f"({r_indices.size - 1}), got {rt_intervals_s.size}")
    return r_indices, rt_intervals_s


def detect_all_points(icg, fs: float, r_indices,
                      config: Optional[PointConfig] = None,
                      rt_intervals_s=None) -> tuple:
    """Detect points for every beat delimited by consecutive R peaks.

    Returns ``(points, failures)``: a list of :class:`BeatPoints` for
    the beats that were successfully analysed and a list of
    ``(beat_number, reason)`` tuples for those that were not.  The last
    R peak only closes the final window; it does not start a beat.

    Runs the beat-batched kernels of :mod:`repro.icg.batch` unless
    :func:`set_point_backend` selected the per-beat reference loop;
    the two are bit-identical (pinned by the batched-parity suite).
    """
    points, failures, _ = detect_all_landmarks(icg, fs, r_indices,
                                               config, rt_intervals_s)
    return points, failures


def detect_all_landmarks(icg, fs: float, r_indices,
                         config: Optional[PointConfig] = None,
                         rt_intervals_s=None) -> tuple:
    """Backend-dispatched detection with the landmark columns.

    Returns ``(points, failures, landmarks)`` where ``landmarks`` is
    the :class:`~repro.icg.batch.BeatLandmarks` array twin of
    ``points`` under the batched backend and ``None`` under the
    reference backend (downstream consumers treat ``None`` as "take
    the per-beat path").  The single dispatch point both
    :func:`detect_all_points` and the pipeline's point-detection stage
    go through, so validation and backend selection can never diverge.
    """
    r_indices, rt_intervals_s = _validate_all_points_args(
        r_indices, rt_intervals_s)
    if _point_backend == "batched":
        from repro.icg.batch import detect_all_points_batched

        return detect_all_points_batched(icg, fs, r_indices, config,
                                         rt_intervals_s)
    points, failures = _detect_all_points_ref(icg, fs, r_indices,
                                              config, rt_intervals_s)
    return points, failures, None


def _detect_all_points_ref(icg, fs: float, r_indices,
                           config: Optional[PointConfig] = None,
                           rt_intervals_s=None) -> tuple:
    """The original per-beat loop — the batched path's parity oracle.

    Inputs are assumed validated (see :func:`detect_all_points`).
    """
    points = []
    failures = []
    for k in range(r_indices.size - 1):
        rt = None if rt_intervals_s is None else float(rt_intervals_s[k])
        try:
            points.append(detect_beat_points(
                icg, fs, int(r_indices[k]), int(r_indices[k + 1]),
                config, rt_interval_s=rt))
        except DetectionError as exc:
            failures.append((k, str(exc)))
    return points, failures
