"""Beat-batched ICG landmark detection — the zero-copy hot path.

:func:`repro.icg.points.detect_all_points` historically ran a Python
loop over beats, and each beat paid three Savitzky-Golay derivative
passes plus a dozen small searches.  Profiling shows that loop — not
the filter kernels — dominating the post-filter half of the pipeline.
This module performs the same detection over *beat-batched* arrays:

* the three smoothed derivatives are computed **once** for the whole
  recording (one ``np.correlate`` per derivative order; consecutive
  beats tile the signal, so every beat's interior samples fall out of
  the same pass) with the per-beat polynomial edge fits applied as a
  batched patch;
* the C/B/X searches run on an ``(n_beats, max_len)`` strided window
  view of the signal (``sliding_window_view`` over a padded copy), so
  argmax/argmin/threshold walks become masked row reductions instead
  of per-beat Python;
* only the operations whose floating-point result depends on the BLAS
  reduction order (the tiny edge-projection matvecs and the B0 line
  fit) remain per-beat — they are *calls into the identical code* the
  reference loop uses, which is what keeps the batched output
  **bit-identical** to the per-beat oracle
  (:func:`repro.icg.points._detect_all_points_ref`), as pinned by
  ``tests/icg/test_batched_parity.py``.

The contract is strict parity: same :class:`~repro.icg.points.BeatPoints`,
same ``(beat, reason)`` failure tuples in the same order, including the
interpolated values inside the messages.  Two escape hatches keep even
the odd corners faithful: non-monotonic R indices (whose beat windows
can overlap, breaking the shared-derivative trick) fall back to the
reference loop wholesale, and a beat whose geometry would make the
reference raise a non-:class:`~repro.errors.DetectionError` exception
(e.g. an empty C search window from a pathological config) is
delegated to the reference single-beat call so even the exception
surface matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.dsp._signal import padded_row_view as _padded_row_view
from repro.dsp.derivative import savgol_coefficients
from repro.dsp.kernels import savgol_kernel

__all__ = ["BeatLandmarks", "detect_all_points_batched"]


@dataclass(frozen=True)
class BeatLandmarks:
    """Detected landmarks of every analysable beat, as flat arrays.

    The array twin of a ``list[BeatPoints]``: row ``k`` of every array
    describes the ``k``-th *successful* beat (absolute sample
    indices).  Downstream batched consumers
    (:func:`repro.icg.hemodynamics.systolic_intervals`,
    :meth:`repro.icg.hemodynamics.HemodynamicsEstimator.estimate_landmarks`)
    work on these columns directly instead of re-gathering fields from
    the object list beat by beat.
    """

    r: np.ndarray              #: R-peak index per beat (int)
    c: np.ndarray              #: C-point index per beat (int)
    b: np.ndarray              #: B-point index per beat (int)
    x: np.ndarray              #: X-point index per beat (int)
    b0: np.ndarray             #: initial B estimate (fractional sample)
    x0: np.ndarray             #: initial X estimate (int)
    pattern_found: np.ndarray  #: which B branch fired, per beat (bool)

    @property
    def n_beats(self) -> int:
        """Number of successfully analysed beats."""
        return int(self.r.size)

    def to_points(self) -> list:
        """The equivalent ``list[BeatPoints]`` (the legacy contract)."""
        from repro.icg.points import BeatPoints

        return [
            BeatPoints(r_index=int(self.r[k]), c_index=int(self.c[k]),
                       b_index=int(self.b[k]), x_index=int(self.x[k]),
                       b0_index=float(self.b0[k]),
                       x0_index=int(self.x0[k]),
                       pattern_found=bool(self.pattern_found[k]))
            for k in range(self.r.size)
        ]

    @classmethod
    def from_points(cls, points) -> "BeatLandmarks":
        """Landmarks gathered from a ``list[BeatPoints]`` (used when
        the reference backend produced the list)."""
        return cls(
            r=np.array([p.r_index for p in points], dtype=np.int64),
            c=np.array([p.c_index for p in points], dtype=np.int64),
            b=np.array([p.b_index for p in points], dtype=np.int64),
            x=np.array([p.x_index for p in points], dtype=np.int64),
            b0=np.array([p.b0_index for p in points], dtype=float),
            x0=np.array([p.x0_index for p in points], dtype=np.int64),
            pattern_found=np.array([p.pattern_found for p in points],
                                   dtype=bool),
        )


# Failure codes, in the order the per-beat reference checks them.
_OK = 0
_FAIL_WINDOW = 1
_FAIL_SHORT = 2
_FAIL_DERIV = 3
_FAIL_RT_NONE = 4
_FAIL_C_EDGE = 5
_FAIL_C_SIGN = 6
_FAIL_UPSTROKE = 7
_FAIL_SLOPE = 8
_FAIL_B0_RANGE = 9
_FAIL_NO_B = 10
_FAIL_B_AFTER_C = 11
_FAIL_X0_ROOM = 12
_FAIL_X0_RT_EMPTY = 13
_FAIL_X0_SIGN = 14
_FAIL_X_BEFORE_C = 15
_DELEGATE = 99            # reproduce via the reference single-beat call

_MESSAGES = {
    _FAIL_SHORT: "beat window shorter than 250 ms",
    _FAIL_DERIV: "beat too short for smoothed derivatives",
    _FAIL_RT_NONE: "x_strategy='rt_window' needs the beat's RT interval",
    _FAIL_C_EDGE: "C point fell on the beat-window edge",
    _FAIL_C_SIGN: "beat maximum is not positive; no C wave",
    _FAIL_UPSTROKE: "upstroke too short for the 40-80 % line fit",
    _FAIL_SLOPE: "upstroke line fit has non-positive slope",
    _FAIL_NO_B: "no B candidate left of B0",
    _FAIL_B_AFTER_C: "B landed at/after C",
    _FAIL_X0_ROOM: "no room right of C for X0",
    _FAIL_X0_RT_EMPTY: "empty RT search window for X0",
    _FAIL_X0_SIGN: "X0 candidate is not a negative minimum",
    _FAIL_X_BEFORE_C: "X landed at/before C",
}


def _set_fail(status: np.ndarray, mask: np.ndarray, code: int) -> None:
    """First failure wins, exactly like the reference's check order."""
    status[(status == _OK) & mask] = code


def _rightmost_true(cond: np.ndarray, lo: np.ndarray,
                    hi: np.ndarray) -> np.ndarray:
    """Per row: the largest column ``j`` with ``lo <= j <= hi`` and
    ``cond[row, j]`` — the vectorized "walk left until hit".

    Returns -1 where no column qualifies (``hi < lo`` is an empty
    range).  ``lo``/``hi`` are inclusive per-row bounds.
    """
    cols = np.arange(cond.shape[1])
    allowed = (cols >= lo[:, None]) & (cols <= hi[:, None])
    return np.where(cond & allowed, cols, -1).max(axis=1)


def _masked_argmax(values: np.ndarray, lo: np.ndarray,
                   hi: np.ndarray) -> np.ndarray:
    """Per row: first index of the maximum over columns ``[lo, hi)`` —
    identical tie-breaking to ``argmax`` on the slice."""
    cols = np.arange(values.shape[1])
    allowed = (cols >= lo[:, None]) & (cols < hi[:, None])
    return np.where(allowed, values, -np.inf).argmax(axis=1)


def _masked_argmin(values: np.ndarray, lo: np.ndarray,
                   hi: np.ndarray) -> np.ndarray:
    cols = np.arange(values.shape[1])
    allowed = (cols >= lo[:, None]) & (cols < hi[:, None])
    return np.where(allowed, values, np.inf).argmin(axis=1)


def _batched_derivatives(icg: np.ndarray, starts: np.ndarray,
                         stops: np.ndarray, window: int,
                         fs: float) -> tuple:
    """The three smoothed derivatives of every beat, in one pass each.

    Returns full-length arrays ``(d1, d2, d3)`` where the slice
    ``[starts[k]:stops[k]]`` holds exactly what
    ``savgol_derivative(icg[starts[k]:stops[k]], ...)`` returns for
    beat ``k`` — interior samples from one global ``np.correlate``
    (bit-identical: each output sample is the same windowed dot
    product either way), beat-edge samples from the same per-beat
    polynomial projections the reference applies.

    Only beats with ``stops - starts > window`` may be passed in, and
    the ``[start, stop)`` windows must be disjoint.
    """
    n = icg.size
    half = window // 2
    m = starts.size
    outs = []
    t_both = np.stack([np.arange(-half, 0, dtype=np.int64),    # j - half
                       np.arange(1, half + 1, dtype=np.int64)])  # j + 1
    offsets = np.arange(half)
    head_idx = (starts[:, None] + offsets[None, :]).ravel()
    tail_idx = (stops[:, None] - half + offsets[None, :]).ravel()
    for deriv in (1, 2, 3):
        polyorder = deriv + 2
        taps = savgol_coefficients(window, polyorder, deriv,
                                   delta=1.0 / fs)
        proj = savgol_kernel(window, polyorder)
        out = np.zeros(n)
        out[half: n - half] = np.correlate(icg, taps, mode="valid")

        # Per-beat head/tail polynomial coefficients.  The (k, window)
        # matvec stays a per-beat call into the very same expression
        # the reference evaluates — a batched GEMM would change the
        # BLAS reduction order and break bit-parity.  (The windows are
        # gathered into one contiguous matrix first; dgemv on a row
        # copy returns the same bits as on the original slice.)
        npow = polyorder + 1
        if deriv == 1:
            edge_wins = np.empty((2 * m, window))
            swin = sliding_window_view(icg, window)
            edge_wins[0::2] = swin[starts]
            edge_wins[1::2] = swin[stops - window]
        head_c = np.empty((m, npow))
        tail_c = np.empty((m, npow))
        for k in range(m):
            head_c[k] = proj @ edge_wins[2 * k]
            tail_c[k] = proj @ edge_wins[2 * k + 1]

        # Off-centre evaluation of the fitted polynomials, vectorized
        # over beats, edge offsets and the head/tail pair.  The
        # accumulation follows the reference's exact operation order —
        # term built by sequential small-integer multiplications,
        # powers of exact integer abscissae, power-by-power summation
        # — so every edge sample matches the scalar loop bit for bit.
        coeffs = np.stack([head_c, tail_c])          # (2, m, npow)
        vals = np.zeros((2, m, half))
        for power in range(deriv, npow):
            term = coeffs[:, :, power]
            for k in range(deriv):
                term = term * (power - k)
            vals += term[:, :, None] * (t_both
                                        ** (power - deriv))[:, None, :]
        vals *= fs ** deriv
        out[head_idx] = vals[0].ravel()
        out[tail_idx] = vals[1].ravel()
        outs.append(out)
    return tuple(outs)


def _pattern_present(d2_rows: np.ndarray, inseg: np.ndarray,
                     tol: np.ndarray) -> np.ndarray:
    """Whether the ``(+,-,+,-)`` sign pattern occurs in each beat's
    second-derivative segment (``inseg`` marks the segment columns).

    Mirrors :func:`repro.dsp.derivative.sign_pattern_positions`:
    samples inside the tolerance band inherit the previous sign, runs
    are length-compressed (hence strictly alternating), and the
    pattern exists iff at least four runs remain starting from the
    first ``+`` run.
    """
    n, width = d2_rows.shape
    cols = np.arange(width)
    raw = np.where(d2_rows > tol[:, None], 1,
                   np.where(d2_rows < -tol[:, None], -1, 0))
    raw = np.where(inseg, raw, 0)
    # Forward-fill zeros from the last nonzero sign within the segment.
    pos = np.where(raw != 0, cols, -1)
    last = np.maximum.accumulate(pos, axis=1)
    rows_idx = np.arange(n)[:, None]
    filled = np.where(last >= 0, raw[rows_idx, np.maximum(last, 0)], 0)
    # Runs = sign changes among the filled samples (leading zeros are
    # skipped, consecutive equal signs merge).
    prev = np.empty_like(filled)
    prev[:, 0] = 0
    prev[:, 1:] = filled[:, :-1]
    n_runs = ((filled != 0) & (filled != prev)).sum(axis=1)
    # Sign of the first run: value at the first nonzero sample.
    any_sign = (filled != 0).any(axis=1)
    first_nz = (filled != 0).argmax(axis=1)
    first_sign = np.where(any_sign, filled[np.arange(n), first_nz], 0)
    # Runs strictly alternate, so "+-+-" exists iff >= 4 runs remain
    # once a leading "-" run is discarded.
    return (n_runs - (first_sign < 0)) >= 4


def detect_all_points_batched(icg: np.ndarray, fs: float,
                              r_indices: np.ndarray,
                              config=None,
                              rt_intervals_s=None, *,
                              beats=None,
                              origins=None) -> tuple:
    """Batched twin of the per-beat detection loop.

    Returns ``(points, failures, landmarks)`` where ``points`` and
    ``failures`` are exactly what the reference loop produces (same
    objects, same order, same messages) and ``landmarks`` is the
    :class:`BeatLandmarks` array view of ``points``.

    The caller (:func:`repro.icg.points.detect_all_points`) owns input
    validation; this function assumes a 1-D float ``icg`` and >= 2
    integer ``r_indices``.

    ``beats`` — an explicit ``(starts, stops)`` pair of per-beat
    window bounds — replaces the consecutive-R-pair derivation.  The
    cohort tier uses it to run *one* detection over several
    recordings' ICG signals laid end to end: beat windows never read
    outside themselves (interior derivative taps live in
    ``[start, stop)``, the edge fits in the window's first/last
    ``window`` samples, and every row reduction below is masked by the
    beat's length), so concatenation cannot change any beat's bits.
    The caller guarantees the windows are in-bounds, disjoint and
    sorted.

    ``origins`` (with ``beats``) gives each beat an integer origin to
    subtract when assembling output indices, so a beat cut from a
    signal placed at offset ``origins[k]`` reports the indices — bit
    for bit, including the float ``b0_index`` — that a detection over
    its own recording alone would have produced.  Delegation to the
    per-beat reference cannot honour foreign origins, so it raises
    instead (the cohort caller screens delegating beats out and treats
    the raise as a demotion signal).
    """
    from repro.icg.points import (
        BeatPoints,
        PointConfig,
        _detect_all_points_ref,
        _window_derivative,
        detect_beat_points,
    )

    config = config or PointConfig()
    icg = np.asarray(icg, dtype=float)
    if beats is None:
        r = np.asarray(r_indices, dtype=np.int64)
        if np.any(np.diff(r) <= 0):
            # Overlapping/odd beat windows break the shared-derivative
            # layout; this is pathological input, not a hot path.
            points, failures = _detect_all_points_ref(
                icg, fs, r, config, rt_intervals_s)
            return points, failures, BeatLandmarks.from_points(points)
        starts = r[:-1]
        stops = r[1:]
    else:
        starts = np.asarray(beats[0], dtype=np.int64)
        stops = np.asarray(beats[1], dtype=np.int64)

    n_signal = icg.size
    lens = stops - starts
    n = starts.size
    if origins is None:
        local_starts = starts
    else:
        local_starts = starts - np.asarray(origins, dtype=np.int64)
    status = np.zeros(n, dtype=np.int64)

    # -- per-beat validity, in the reference's check order ----------------
    _set_fail(status, ~((0 <= starts) & (stops <= n_signal)),
              _FAIL_WINDOW)
    _set_fail(status, lens < int(0.25 * fs), _FAIL_SHORT)
    window = _window_derivative(config.derivative_window_s, fs)
    _set_fail(status, lens <= window, _FAIL_DERIV)
    min_c = int(config.min_c_delay_s * fs)
    # beat[min_c:] empty would make the reference raise numpy's own
    # ValueError from argmax — delegate those beats to it.
    _set_fail(status, min_c >= lens, _DELEGATE)

    active = status == _OK
    c_rel = np.zeros(n, np.int64)
    b_rel = np.zeros(n, np.int64)
    x_rel = np.zeros(n, np.int64)
    b0_rel = np.zeros(n, float)
    x0_rel = np.zeros(n, np.int64)
    pattern = np.zeros(n, bool)

    if active.any():
        width = int(lens[active].max())
        row_starts = np.clip(starts, 0, max(n_signal - 1, 0))

        d1f, d2f, d3f = _batched_derivatives(
            icg, starts[active], stops[active], window, fs)

        def rows_of(signal, row_width):
            # Shared leading-axis gather (also used by the cohort
            # stacker); masked reductions below never read past a
            # beat's length, so the zero extension preserves values.
            return _padded_row_view(signal, row_starts, row_width)

        with np.errstate(all="ignore"):
            rows = rows_of(icg, width)
            rows_d3 = rows_of(d3f, width)

            # -- C point --------------------------------------------------
            c_rel = _masked_argmax(rows, np.full(n, min_c, np.int64),
                                   lens)
            _set_fail(status,
                      active & ((c_rel >= lens - 2) | (c_rel <= 1)),
                      _FAIL_C_EDGE)
            active = status == _OK
            c_amp = icg[np.clip(starts + c_rel, 0, n_signal - 1)]
            _set_fail(status, active & ~(c_amp > 0), _FAIL_C_SIGN)
            active = status == _OK

            # -- B0: the 40-80 % upstroke line fit ------------------------
            # Everything through the B search lives left of C, so the
            # d1/d2 row views are gathered at the C horizon only — a
            # fraction of the full beat width.
            width_up = int(min(max(c_rel[active].max(initial=0) + 1, 1),
                               width))
            rows_up = rows[:, :width_up]
            cols_up = np.arange(width_up)
            upslope = cols_up[None, :] <= c_rel[:, None]  # j in [0, C]
            high_level = config.line_fit_high * c_amp
            low_level = config.line_fit_low * c_amp
            idx_high = np.where((rows_up <= high_level[:, None])
                                & upslope, cols_up, -1).max(axis=1)
            idx_low = np.where((rows_up <= low_level[:, None])
                               & upslope, cols_up, -1).max(axis=1)
            _set_fail(status,
                      active & ((idx_high < 0) | (idx_low < 0)
                                | (idx_high - idx_low < 2)),
                      _FAIL_UPSTROKE)
            active = status == _OK
            slope = np.zeros(n)
            intercept = np.zeros(n)
            for k in np.flatnonzero(active):
                # fit_line's y reductions are length-dependent pairwise
                # sums, so they stay per-beat calls on the identical
                # slice; the abscissa statistics are exact integer
                # arithmetic, so their closed forms match np.mean/np.sum
                # over arange bit for bit.
                lo = int(idx_low[k])
                hi = int(idx_high[k])
                seg = icg[starts[k] + lo: starts[k] + hi + 1]
                size = hi - lo + 1
                t_mean = ((lo + hi) * size / 2) / size
                denom = size * (size * size - 1) / 12
                y_mean = np.add.reduce(seg) / size
                tc = np.arange(lo, hi + 1, dtype=float) - t_mean
                slope[k] = np.add.reduce(tc * (seg - y_mean)) / denom
                intercept[k] = y_mean - slope[k] * t_mean
            _set_fail(status, active & (slope <= 0), _FAIL_SLOPE)
            active = status == _OK
            b0_rel = np.where(slope != 0, -intercept,
                              0.0) / np.where(slope != 0, slope, 1.0)
            _set_fail(status,
                      active & ~((0.0 <= b0_rel) & (b0_rel <= c_rel)),
                      _FAIL_B0_RANGE)
            active = status == _OK

            # -- B: pattern branch selection + leftward search ------------
            rows_d1 = rows_of(d1f, width_up)
            rows_d2 = rows_of(d2f, width_up)
            pattern_lo = np.maximum(
                0, c_rel - int(config.b_pattern_window_s * fs))
            inseg = upslope & (cols_up[None, :] >= pattern_lo[:, None])
            abs_d2 = np.abs(rows_d2)
            tol = config.sign_tolerance_fraction * np.where(
                inseg, abs_d2, 0.0).max(axis=1)
            pattern = _pattern_present(rows_d2, inseg, tol)
            b_start = np.floor(b0_rel).astype(np.int64)
            search_lo = np.maximum(
                0, b_start - int(config.b_search_window_s * fs))
            walk_lo = np.maximum(search_lo, 1)

            # Strict local minima of d3, beat-locally (0 < j < len - 1
            # enforced by the construction and the hi bound).
            lm3 = np.zeros(rows_d3.shape, dtype=bool)
            lm3[:, 1:-1] = ((rows_d3[:, 1:-1] < rows_d3[:, :-2])
                            & (rows_d3[:, 1:-1] <= rows_d3[:, 2:]))
            b_min = _rightmost_true(lm3, walk_lo,
                                    np.minimum(b_start, lens - 2))

            # Zero-cross branch on d1: tolerance hit first, then the
            # sign change with nearest-to-zero resolution.
            abs_d1 = np.abs(rows_d1)
            d1_tol = 0.02 * np.where(upslope, abs_d1, 0.0).max(axis=1)
            hit_a = abs_d1 <= d1_tol[:, None]
            hit = hit_a.copy()
            hit[:, 1:] |= rows_d1[:, :-1] * rows_d1[:, 1:] < 0
            b_cross_at = _rightmost_true(hit, walk_lo,
                                         np.minimum(b_start, lens - 1))
            # Clamp into the gathered width: inactive rows may carry
            # garbage walk bounds (their comparisons are discarded).
            safe = np.minimum(np.maximum(b_cross_at, 1),
                              max(width_up - 1, 0))
            rows_idx = np.arange(n)
            take_prev = (~hit_a[rows_idx, safe]
                         & (abs_d1[rows_idx, safe - 1]
                            < abs_d1[rows_idx, safe]))
            b_cross = np.where(b_cross_at < 0, -1,
                               b_cross_at - take_prev)

            b_rel = np.where(pattern, b_min, b_cross)
            _set_fail(status, active & (b_rel < 0), _FAIL_NO_B)
            active = status == _OK
            _set_fail(status, active & (b_rel >= c_rel),
                      _FAIL_B_AFTER_C)
            active = status == _OK

            # -- X0 -------------------------------------------------------
            if (config.x_strategy == "rt_window"
                    and rt_intervals_s is None):
                # The reference reports the missing RT interval only
                # for beats that survive through the X0 stage.
                _set_fail(status, active, _FAIL_RT_NONE)
                active = status == _OK
            if config.x_strategy == "rt_window" and active.any():
                rt = np.asarray(rt_intervals_s, dtype=float)
                x0_lo = np.maximum(
                    np.trunc(rt * fs).astype(np.int64), c_rel + 1)
                x0_hi = np.minimum(
                    np.trunc(config.rt_window_factor * rt * fs)
                    .astype(np.int64), lens)
                _set_fail(status, active & (x0_hi - x0_lo < 3),
                          _FAIL_X0_RT_EMPTY)
            else:
                x0_lo = c_rel + 1
                x0_hi = lens
                _set_fail(status, active & (lens - (c_rel + 1) < 3),
                          _FAIL_X0_ROOM)
            active = status == _OK
            x0_rel = _masked_argmin(rows, x0_lo, x0_hi)
            x0_val = icg[np.clip(starts + x0_rel, 0, n_signal - 1)]
            _set_fail(status, active & (x0_val >= 0), _FAIL_X0_SIGN)
            active = status == _OK

            # -- X: local min of d3 left of X0, falling back to X0 --------
            x_lo = np.maximum(
                c_rel + 1,
                x0_rel - int(config.x_search_window_s * fs))
            x_min = _rightmost_true(lm3, np.maximum(x_lo, 1),
                                    np.minimum(x0_rel, lens - 2))
            x_rel = np.where(x_min < 0, x0_rel, x_min)
            _set_fail(status, active & (x_rel <= c_rel),
                      _FAIL_X_BEFORE_C)

    # -- assemble points / failures in beat order -------------------------
    points = []
    failures = []
    delegated = False
    for k in range(n):
        code = int(status[k])
        if code == _OK:
            points.append(BeatPoints(
                r_index=int(local_starts[k]),
                c_index=int(local_starts[k] + c_rel[k]),
                b_index=int(local_starts[k] + b_rel[k]),
                x_index=int(local_starts[k] + x_rel[k]),
                b0_index=float(int(local_starts[k]) + float(b0_rel[k])),
                x0_index=int(local_starts[k] + x0_rel[k]),
                pattern_found=bool(pattern[k]),
            ))
        elif code == _DELEGATE:
            if origins is not None:
                # The per-beat reference works in this signal's frame;
                # it cannot report another origin's indices.  The
                # cohort caller screens these beats out up front, so
                # reaching here means the screen and the detection
                # disagree — refuse, and let the caller demote.
                raise ValueError(
                    "cannot delegate a beat to the reference detector "
                    "under per-beat origins")
            rt = (None if rt_intervals_s is None
                  else float(np.asarray(rt_intervals_s)[k]))
            # Reproduce whatever the reference does for this beat —
            # including raising its (non-DetectionError) exception.
            delegated = True
            points.append(detect_beat_points(
                icg, fs, int(starts[k]), int(stops[k]), config,
                rt_interval_s=rt))
        elif code == _FAIL_WINDOW:
            failures.append((k, f"invalid beat window [{int(starts[k])}"
                                f", {int(stops[k])}) for signal of "
                                f"{n_signal} samples"))
        elif code == _FAIL_B0_RANGE:
            failures.append((k, f"B0 estimate {float(b0_rel[k]):.1f} "
                                f"outside [0, C={int(c_rel[k])}]"))
        else:
            failures.append((k, _MESSAGES[code]))
    if delegated:        # a reference-produced point: gather generically
        return points, failures, BeatLandmarks.from_points(points)
    # Landmarks straight from the columns already computed — no second
    # per-beat pass over the points list on the hot path.
    ok = status == _OK
    landmarks = BeatLandmarks(
        r=local_starts[ok],
        c=(local_starts + c_rel)[ok],
        b=(local_starts + b_rel)[ok],
        x=(local_starts + x_rel)[ok],
        b0=(local_starts + b0_rel)[ok],
        x0=(local_starts + x0_rel)[ok],
        pattern_found=pattern[ok],
    )
    return points, failures, landmarks
