"""Small numpy version-compatibility helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["trapezoid"]

# np.trapz was renamed np.trapezoid in numpy 2.0 and removed later.
trapezoid = getattr(np, "trapezoid", None) or getattr(np, "trapz")
