"""The firmware simulator: Fig 3's flowchart, causally, sample by sample.

Composes the streaming kernels of :mod:`repro.rt` into the device's
processing loop:

1. ECG: morphological baseline estimation (Lemire min/max wedges) with
   a matched delay line, then the causal 32nd-order FIR band-pass;
2. R-peak detection with the streaming Pan-Tompkins;
3. impedance: first difference -> 20 Hz low-pass -> 0.8 Hz high-pass
   (the conditioned ICG);
4. on every confirmed R peak: per-beat B/C/X analysis over the bounded
   ICG buffer;
5. per-beat report packets (Z0, LVET, PEP, HR) for the radio model.

It also *prices* itself: every kernel reports per-sample operation
counts, which the Cortex-M3 model converts to CPU duty cycle — in
soft-float mode this reproduces the paper's 40-50 % claim, and in Q15
mode it quantifies what a fixed-point rewrite would save.  Radio duty
comes from the packet air-time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.mcu import CortexM3Costs, McuModel
from repro.device.radio import BleRadioModel, ReportPacket
from repro.dsp import fir as _fir
from repro.dsp import morphology as _morphology
from repro.errors import ConfigurationError, SignalError
from repro.icg.points import PointConfig
from repro.rt.detectors import (
    StreamingBeatProcessor,
    StreamingIcgConditioner,
    StreamingPanTompkins,
)
from repro.rt.opcount import OpCounts
from repro.rt.ringbuffer import RingBuffer
from repro.rt.streaming import StreamingFir, StreamingMorphologyBaseline

__all__ = ["FirmwareConfig", "FirmwareResult", "FirmwareSimulator"]


@dataclass(frozen=True)
class FirmwareConfig:
    """Firmware build parameters.

    ``frontend_rate_hz``/``frontend_taps`` describe the impedance
    front-end interface: the proprietary ICG chip delivers oversampled
    envelope data that the MCU decimates to the processing rate with a
    polyphase FIR.  That work runs at the *front-end* rate and
    dominates the CPU budget — it is priced into the duty cycle even
    though the functional simulation consumes already-decimated
    signals.
    """

    fir_order: int = 32
    ecg_band_hz: tuple = (0.05, 40.0)
    icg_lowpass_hz: float = 20.0
    icg_highpass_hz: float = 0.8
    beat_buffer_s: float = 4.0
    points: PointConfig = field(default_factory=PointConfig)
    report_interval_beats: int = 1
    frontend_rate_hz: float = 2000.0
    frontend_taps: int = 32


@dataclass
class FirmwareResult:
    """Everything one firmware run produced."""

    fs: float
    r_peak_indices: np.ndarray
    beats: list                     # (BeatPoints, r_start, r_stop)
    failures: list
    packets: list
    z0_ohm: float
    hr_bpm: float
    mean_pep_s: float
    mean_lvet_s: float
    ops_per_sample: OpCounts
    cpu_duty_softfloat: float
    cpu_duty_softdouble: float
    cpu_duty_q15: float
    radio_duty: float

    @property
    def cpu_duty_paper(self) -> float:
        """The operating point matching the paper's 40-50 % claim:
        unoptimised double-precision soft-float firmware."""
        return self.cpu_duty_softdouble

    def summary(self) -> dict:
        """The report payload means (what the physician's app shows)."""
        return {
            "z0_ohm": self.z0_ohm,
            "lvet_s": self.mean_lvet_s,
            "pep_s": self.mean_pep_s,
            "hr_bpm": self.hr_bpm,
        }


class FirmwareSimulator:
    """Cycle-accurate-ish functional model of the device firmware."""

    def __init__(self, fs: float, config: FirmwareConfig = None,
                 mcu: McuModel = None,
                 radio: BleRadioModel = None) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        self.fs = float(fs)
        self.config = config or FirmwareConfig()
        self.mcu = mcu or McuModel()
        self.radio = radio or BleRadioModel()

    # -- construction of the streaming chain -------------------------------

    def _build(self):
        cfg = self.config
        first, second = _morphology.default_element_lengths(self.fs)
        baseline = StreamingMorphologyBaseline(first, second)
        baseline_delay = int(round(baseline.delay_samples))
        taps = _fir.design_bandpass(cfg.fir_order, cfg.ecg_band_hz[0],
                                    cfg.ecg_band_hz[1], self.fs)
        ecg_fir = StreamingFir(taps)
        pan_tompkins = StreamingPanTompkins(self.fs)
        icg_chain = StreamingIcgConditioner(self.fs, cfg.icg_lowpass_hz,
                                            cfg.icg_highpass_hz)
        beat_processor = StreamingBeatProcessor(self.fs, cfg.beat_buffer_s,
                                                cfg.points)
        return (baseline, baseline_delay, ecg_fir, pan_tompkins, icg_chain,
                beat_processor)

    def run(self, ecg, z) -> FirmwareResult:
        """Process a full recording through the streaming chain."""
        ecg = np.asarray(ecg, dtype=float)
        z = np.asarray(z, dtype=float)
        if ecg.shape != z.shape or ecg.ndim != 1:
            raise SignalError("ecg and z must be 1-D arrays of equal length")
        if ecg.size < int(4 * self.fs):
            raise SignalError("firmware run needs at least four seconds")

        (baseline, baseline_delay, ecg_fir, pan_tompkins, icg_chain,
         beat_processor) = self._build()
        raw_delay_line = RingBuffer(baseline_delay + 1)
        ecg_chain_delay = baseline_delay + int(round(ecg_fir.delay_samples))
        icg_delay = int(round(icg_chain.delay_samples))

        r_peaks_raw: list = []
        for n in range(ecg.size):
            # --- ECG path ---------------------------------------------
            raw_delay_line.push(ecg[n])
            baseline_estimate = baseline.process(ecg[n])
            if len(raw_delay_line) > baseline_delay:
                aligned = raw_delay_line[baseline_delay]
            else:
                aligned = ecg[n]
            corrected = aligned - baseline_estimate
            bandpassed = ecg_fir.process(corrected)
            detection = pan_tompkins.process(bandpassed)
            if detection is not None:
                # detection is in band-passed stream time; map back to
                # raw input time.
                r_raw = detection - ecg_chain_delay
                if r_raw >= 0:
                    r_peaks_raw.append(r_raw)
                    # Hand the beat to the ICG processor in its own
                    # stream time.
                    beat_processor.on_r_peak(r_raw + icg_delay)
            # --- ICG path ---------------------------------------------
            beat_processor.push_icg(icg_chain.process(z[n]))

        # --- aggregate results --------------------------------------------
        beats = beat_processor.beats
        z0 = float(np.mean(z))
        r_array = np.asarray(r_peaks_raw, dtype=int)
        if r_array.size >= 2:
            hr = float(60.0 * self.fs / np.mean(np.diff(r_array)))
        else:
            hr = float("nan")
        peps = np.array([p.pep_s(self.fs) for p, _, _ in beats])
        lvets = np.array([p.lvet_s(self.fs) for p, _, _ in beats])
        valid = np.ones(peps.size, dtype=bool)
        if peps.size:
            valid = (peps > 0) & (peps < 0.30) & (lvets > 0) & (lvets < 0.60)
        mean_pep = float(peps[valid].mean()) if valid.any() else float("nan")
        mean_lvet = float(lvets[valid].mean()) if valid.any() else float("nan")

        packets = []
        for i, (points, r_start, r_stop) in enumerate(beats):
            if i % self.config.report_interval_beats:
                continue
            rr_s = (r_stop - r_start) / self.fs
            packets.append(ReportPacket(
                z0_ohm=z0, lvet_s=points.lvet_s(self.fs),
                pep_s=points.pep_s(self.fs),
                hr_bpm=60.0 / rr_s if rr_s > 0 else 0.0,
                sequence=len(packets)))

        ops = self._ops_per_sample(baseline, ecg_fir, pan_tompkins,
                                   icg_chain, beat_processor)
        duration_s = ecg.size / self.fs
        reports_per_second = (len(packets) / duration_s
                              if duration_s > 0 else 0.0)
        radio_duty = (self.radio.report_duty_cycle(1.0 / reports_per_second)
                      if reports_per_second > 0 else 0.0)

        return FirmwareResult(
            fs=self.fs,
            r_peak_indices=r_array,
            beats=beats,
            failures=beat_processor.failures,
            packets=packets,
            z0_ohm=z0,
            hr_bpm=hr,
            mean_pep_s=mean_pep,
            mean_lvet_s=mean_lvet,
            ops_per_sample=ops,
            cpu_duty_softfloat=McuModel(
                self.mcu.clock_hz,
                CortexM3Costs.software_float()).duty_cycle(ops, self.fs),
            cpu_duty_softdouble=McuModel(
                self.mcu.clock_hz,
                CortexM3Costs.software_double()).duty_cycle(ops, self.fs),
            cpu_duty_q15=self.mcu.duty_cycle(ops, self.fs),
            radio_duty=radio_duty,
        )

    def _ops_per_sample(self, baseline, ecg_fir, pan_tompkins, icg_chain,
                        beat_processor) -> OpCounts:
        """Static per-sample workload of the whole chain (referred to
        the processing rate ``fs``)."""
        housekeeping = OpCounts(add=4, cmp=3, load=6, store=3, branch=3)
        n_taps = self.config.frontend_taps
        frontend_per_sample = OpCounts(mac=n_taps, load=2 * n_taps + 2,
                                       store=1, branch=n_taps)
        frontend = frontend_per_sample.scaled(
            self.config.frontend_rate_hz / self.fs)
        return (frontend
                + baseline.ops_per_sample()
                + OpCounts(add=1, load=2, store=1)      # delay + subtract
                + ecg_fir.ops_per_sample()
                + pan_tompkins.ops_per_sample()
                + icg_chain.ops_per_sample()
                + beat_processor.ops_per_beat_sample()
                + housekeeping)
