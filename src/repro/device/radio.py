"""BLE radio model (nRF8001-class) and the report link budget.

The power story of Section V hinges on transmitting *derived
parameters* instead of raw waveforms: the payload is just
``Z0, LVET, PEP, HR`` per reporting interval, so the radio duty cycle
collapses to well below 1 % (the paper quotes 0.1 % used and budgets
1 % worst-case).  This model computes exactly that duty cycle from
packet sizes and air time, and — for comparison — what streaming the
raw samples would cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ReportPacket", "BleRadioModel"]


@dataclass(frozen=True)
class ReportPacket:
    """The derived-parameter payload of Section V.

    Four quantities, each sent as a 32-bit fixed-point value, plus a
    sequence number and CRC16 — 22 bytes of payload before link-layer
    framing.
    """

    z0_ohm: float
    lvet_s: float
    pep_s: float
    hr_bpm: float
    sequence: int = 0

    PAYLOAD_BYTES = 4 * 4 + 4 + 2

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ConfigurationError("sequence must be >= 0")

    def encode(self) -> bytes:
        """Serialise to the on-air payload (fixed-point milli-units)."""
        values = [
            int(round(self.z0_ohm * 1000.0)),
            int(round(self.lvet_s * 1_000_000.0)),
            int(round(self.pep_s * 1_000_000.0)),
            int(round(self.hr_bpm * 1000.0)),
            self.sequence,
        ]
        body = b"".join(v.to_bytes(4, "little", signed=True)
                        for v in values)
        return body + _crc16(body).to_bytes(2, "little")

    @classmethod
    def decode(cls, payload: bytes) -> "ReportPacket":
        """Parse an encoded payload, verifying the CRC."""
        if len(payload) != cls.PAYLOAD_BYTES:
            raise ConfigurationError(
                f"payload must be {cls.PAYLOAD_BYTES} bytes, "
                f"got {len(payload)}")
        body, crc = payload[:-2], int.from_bytes(payload[-2:], "little")
        if _crc16(body) != crc:
            raise ConfigurationError("CRC mismatch")
        raw = [int.from_bytes(body[i:i + 4], "little", signed=True)
               for i in range(0, 20, 4)]
        return cls(z0_ohm=raw[0] / 1000.0, lvet_s=raw[1] / 1_000_000.0,
                   pep_s=raw[2] / 1_000_000.0, hr_bpm=raw[3] / 1000.0,
                   sequence=raw[4])


def _crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE, the BLE-familiar polynomial 0x1021."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) & 0xFFFF
    return crc


class BleRadioModel:
    """Air-time and duty-cycle bookkeeping for a BLE link.

    Parameters
    ----------
    air_rate_bps:
        Physical-layer bit rate (1 Mbps for BLE 4).
    overhead_bytes:
        Link-layer framing per packet (preamble, access address, header,
        MIC, CRC): 14 bytes, plus connection-event overhead folded into
        ``event_overhead_s``.
    event_overhead_s:
        Radio-on time around each connection event beyond the payload
        bits (ramp-up, inter-frame spacing, empty ack).
    """

    def __init__(self, air_rate_bps: float = 1_000_000.0,
                 overhead_bytes: int = 14,
                 event_overhead_s: float = 0.0008) -> None:
        if air_rate_bps <= 0:
            raise ConfigurationError("air rate must be positive")
        if overhead_bytes < 0 or event_overhead_s < 0:
            raise ConfigurationError("overheads must be >= 0")
        self.air_rate_bps = float(air_rate_bps)
        self.overhead_bytes = int(overhead_bytes)
        self.event_overhead_s = float(event_overhead_s)

    def packet_air_time_s(self, payload_bytes: int) -> float:
        """On-air time for one packet of the given payload size."""
        if payload_bytes < 0:
            raise ConfigurationError("payload size must be >= 0")
        bits = 8 * (payload_bytes + self.overhead_bytes)
        return bits / self.air_rate_bps + self.event_overhead_s

    def report_duty_cycle(self, report_interval_s: float,
                          payload_bytes: int = ReportPacket.PAYLOAD_BYTES,
                          ) -> float:
        """Radio duty cycle when sending one report per interval.

        With the paper's beat-to-beat reporting (~1 report/s) this
        evaluates to ~0.1 % — the figure Section V quotes.
        """
        if report_interval_s <= 0:
            raise ConfigurationError("report interval must be positive")
        return min(1.0, self.packet_air_time_s(payload_bytes)
                   / report_interval_s)

    def raw_streaming_duty_cycle(self, fs: float, bytes_per_sample: int,
                                 n_channels: int = 2,
                                 chunk_samples: int = 20) -> float:
        """Duty cycle if raw samples were streamed instead.

        The comparison the paper's design implicitly makes: streaming
        two 16-bit channels at 250 Hz costs orders of magnitude more
        radio-on time than the derived-parameter reports.
        """
        if fs <= 0 or bytes_per_sample <= 0 or n_channels <= 0:
            raise ConfigurationError(
                "fs, bytes_per_sample and n_channels must be positive")
        if chunk_samples <= 0:
            raise ConfigurationError("chunk size must be positive")
        chunk_bytes = bytes_per_sample * n_channels * chunk_samples
        chunk_period_s = chunk_samples / fs
        return min(1.0, self.packet_air_time_s(chunk_bytes)
                   / chunk_period_s)

    def energy_per_report_mj(self, tx_current_ma: float,
                             supply_v: float = 3.0,
                             payload_bytes: int = ReportPacket.PAYLOAD_BYTES,
                             ) -> float:
        """Energy per report in millijoule (for PMU what-ifs)."""
        if tx_current_ma <= 0 or supply_v <= 0:
            raise ConfigurationError("current and voltage must be positive")
        return (tx_current_ma * 1e-3 * supply_v
                * self.packet_air_time_s(payload_bytes) * 1e3)
