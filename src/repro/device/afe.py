"""Analog front ends: the ECG chip and the ICG synchronous demodulator.

Two sensing chains per Section III-A:

* :class:`EcgFrontEnd` — an ADS1291-style instrumentation chain: gain,
  input-referred noise, first-order anti-alias low-pass.
* :class:`IcgFrontEnd` — the proprietary impedance chain: a carrier is
  injected (see :mod:`repro.device.injector`), the developed voltage is
  synchronously demodulated and low-passed, recovering the impedance
  envelope Z(t).

The full carrier path (multiply by the reference, low-pass) is
implemented in :meth:`IcgFrontEnd.demodulate_carrier` and verified in
the tests; for 30 s recordings the baseband shortcut
:meth:`IcgFrontEnd.measure` applies the equivalent transfer (instrument
gain at the carrier frequency + output low-pass + noise) directly to
the impedance envelope, which is what makes whole-protocol simulation
tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bioimpedance.pathways import InstrumentResponse
from repro.device.injector import CurrentInjector
from repro.dsp import iir as _iir
from repro.errors import ConfigurationError, SignalError

__all__ = ["EcgFrontEnd", "IcgFrontEnd"]


@dataclass(frozen=True)
class EcgFrontEnd:
    """ADS1291-style ECG acquisition chain.

    Parameters
    ----------
    gain:
        PGA gain (the ADS1291 offers 1-12; default 6).
    input_noise_uv_rms:
        Input-referred noise over the ECG bandwidth.
    bandwidth_hz:
        First-order anti-alias corner.
    """

    gain: float = 6.0
    input_noise_uv_rms: float = 8.0
    bandwidth_hz: float = 100.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigurationError("gain must be positive")
        if self.input_noise_uv_rms < 0:
            raise ConfigurationError("noise must be >= 0")
        if self.bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def acquire(self, ecg_mv, fs: float,
                rng: np.random.Generator = None) -> np.ndarray:
        """Amplify + band-limit + add input noise; output in millivolt
        referred to the input (gain is applied and divided back out, as
        the digital side does)."""
        x = np.asarray(ecg_mv, dtype=float)
        if x.ndim != 1 or x.size == 0:
            raise SignalError("expected a non-empty 1-D ECG")
        rng = rng or np.random.default_rng(0)
        noisy = x + 1e-3 * self.input_noise_uv_rms * rng.standard_normal(
            x.size)
        if self.bandwidth_hz < fs / 2.0:
            sos = _iir.butter_lowpass(1, self.bandwidth_hz, fs)
            noisy = _iir.sosfilt(sos, noisy)
        return noisy


@dataclass(frozen=True)
class IcgFrontEnd:
    """Impedance measurement chain: injection + synchronous demodulation.

    Parameters
    ----------
    injector:
        The programmable current source.
    instrument:
        AC-coupling response shaping sensitivity vs carrier frequency.
    output_lowpass_hz:
        Demodulator output filter (removes the 2x carrier component and
        band-limits the envelope).
    noise_ohm_rms:
        Output-referred impedance noise of the chain.
    """

    injector: CurrentInjector = field(default_factory=CurrentInjector)
    instrument: InstrumentResponse = field(
        default_factory=InstrumentResponse)
    output_lowpass_hz: float = 45.0
    noise_ohm_rms: float = 0.0005

    def __post_init__(self) -> None:
        if self.output_lowpass_hz <= 0:
            raise ConfigurationError("output low-pass must be positive")
        if self.noise_ohm_rms < 0:
            raise ConfigurationError("noise must be >= 0")

    # -- baseband shortcut (whole recordings) -----------------------------

    def measure(self, z_envelope_ohm, fs: float,
                rng: np.random.Generator = None) -> np.ndarray:
        """Measured impedance trace from the true envelope Z(t).

        Applies the instrument's carrier-frequency gain, the output
        low-pass, and output noise — the baseband equivalent of
        inject-multiply-filter.
        """
        z = np.asarray(z_envelope_ohm, dtype=float)
        if z.ndim != 1 or z.size == 0:
            raise SignalError("expected a non-empty 1-D impedance trace")
        rng = rng or np.random.default_rng(0)
        gain = float(self.instrument.gain(self.injector.frequency_hz))
        measured = gain * z
        if self.output_lowpass_hz < fs / 2.0:
            sos = _iir.butter_lowpass(2, self.output_lowpass_hz, fs)
            measured = _iir.sosfiltfilt(sos, measured)
        if self.noise_ohm_rms > 0:
            measured = measured + self.noise_ohm_rms * rng.standard_normal(
                measured.size)
        return measured

    # -- true carrier path (verification / demos) -------------------------

    def modulated_voltage_mv(self, z_envelope_ohm, fs_carrier: float,
                             ) -> np.ndarray:
        """The raw AC voltage across the body: carrier times envelope.

        ``fs_carrier`` must be at least 4x the injection frequency.
        """
        z = np.asarray(z_envelope_ohm, dtype=float)
        if z.ndim != 1 or z.size == 0:
            raise SignalError("expected a non-empty 1-D impedance trace")
        f_c = self.injector.frequency_hz
        if fs_carrier < 4.0 * f_c:
            raise ConfigurationError(
                f"carrier simulation needs fs >= 4 f_c = {4 * f_c} Hz")
        t = np.arange(z.size) / fs_carrier
        v_rms_mv = self.injector.developed_voltage_mv(z)
        return np.sqrt(2.0) * v_rms_mv * np.sin(2.0 * np.pi * f_c * t)

    def demodulate_carrier(self, voltage_mv, fs_carrier: float,
                           ) -> np.ndarray:
        """Synchronous demodulation of the modulated carrier voltage.

        Multiplies by the coherent reference and low-passes away the
        2 f_c image; the output is the recovered impedance envelope in
        ohm (before instrument-gain correction).
        """
        v = np.asarray(voltage_mv, dtype=float)
        if v.ndim != 1 or v.size == 0:
            raise SignalError("expected a non-empty 1-D voltage trace")
        f_c = self.injector.frequency_hz
        if fs_carrier < 4.0 * f_c:
            raise ConfigurationError(
                f"demodulation needs fs >= 4 f_c = {4 * f_c} Hz")
        t = np.arange(v.size) / fs_carrier
        reference = np.sqrt(2.0) * np.sin(2.0 * np.pi * f_c * t)
        mixed = v * reference
        # Remove the 2 f_c image; the envelope lives far below f_c.
        sos = _iir.butter_lowpass(4, min(0.1 * f_c,
                                         0.4 * fs_carrier / 2.0), fs_carrier)
        envelope_mv = _iir.sosfiltfilt(sos, mixed)
        # envelope_mv = Z * I(Z) * 1e3 with a weak dependence of the
        # delivered current on the load (source sag); two fixed-point
        # iterations recover Z to well below the noise floor.
        current_a = self.injector.amplitude_ua * 1e-6
        z_estimate = envelope_mv / (current_a * 1e3)
        for _ in range(2):
            current_a = self.injector.delivered_current_ua(
                float(np.mean(z_estimate))) * 1e-6
            z_estimate = envelope_mv / (current_a * 1e3)
        return z_estimate
