"""Power management unit: duty-cycle policies over the battery's life.

Section III-A describes the PMU as dynamically tuning the system "to
achieve the best trade-off between energy consumption and performance,
taking into account the available energy in the battery and
requirements (accuracy, latency)".  This module implements that as a
small policy machine over named operating modes, plus a discharge
simulator that quantifies how much lifetime adaptive switching buys
over the paper's fixed continuous worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.power import PowerBudget
from repro.errors import ConfigurationError

__all__ = ["OperatingMode", "STANDARD_MODES", "PowerManagementUnit",
           "DischargeResult"]


@dataclass(frozen=True)
class OperatingMode:
    """A named set of component duty cycles."""

    name: str
    duty_cycles: dict
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("mode needs a name")
        for component, duty in self.duty_cycles.items():
            if not 0.0 <= duty <= 1.0:
                raise ConfigurationError(
                    f"duty for {component!r} must be in [0, 1], got {duty}")


#: The three policy modes used by the default PMU.
STANDARD_MODES = {
    # The paper's continuous-monitoring worst case (106 h on 710 mAh).
    "continuous": OperatingMode(
        "continuous",
        {"ecg_chip": 1.0, "icg_chip": 1.0, "mcu": 0.50, "radio": 0.01,
         "imu": 0.0},
        "Beat-to-beat acquisition and reporting, IMU off."),
    # Spot checks: a 30 s measurement every 10 minutes; the signal
    # chain, MCU and radio scale by 30/600, the IMU wakes briefly to
    # verify posture before each measurement.
    "periodic": OperatingMode(
        "periodic",
        {"ecg_chip": 0.05, "icg_chip": 0.05, "mcu": 0.05 * 0.50,
         "radio": 0.05 * 0.01, "imu": 0.005},
        "30 s measurement every 10 min with posture verification."),
    # Survival mode: daily measurement only, everything else asleep.
    "low_power": OperatingMode(
        "low_power",
        {"ecg_chip": 0.0007, "icg_chip": 0.0007, "mcu": 0.0007 * 0.50,
         "radio": 0.0007 * 0.01, "imu": 0.0},
        "One 60 s measurement per day."),
}


@dataclass(frozen=True)
class DischargeResult:
    """Outcome of a discharge simulation."""

    lifetime_hours: float
    timeline_hours: np.ndarray
    remaining_fraction: np.ndarray
    mode_names: list


class PowerManagementUnit:
    """Threshold policy: degrade gracefully as the battery drains.

    Above ``periodic_threshold`` of charge the PMU allows continuous
    monitoring; between the thresholds it drops to periodic spot
    checks; below ``low_power_threshold`` it retreats to survival mode.
    """

    def __init__(self, battery_mah: float = 710.0,
                 budget: PowerBudget = None,
                 modes: dict = None,
                 periodic_threshold: float = 0.5,
                 low_power_threshold: float = 0.15) -> None:
        if battery_mah <= 0:
            raise ConfigurationError("battery capacity must be positive")
        if not 0.0 < low_power_threshold < periodic_threshold < 1.0:
            raise ConfigurationError(
                "need 0 < low_power_threshold < periodic_threshold < 1")
        self.battery_mah = float(battery_mah)
        self.budget = budget or PowerBudget()
        self.modes = dict(modes or STANDARD_MODES)
        for required in ("continuous", "periodic", "low_power"):
            if required not in self.modes:
                raise ConfigurationError(f"missing mode {required!r}")
        self.periodic_threshold = float(periodic_threshold)
        self.low_power_threshold = float(low_power_threshold)

    def select_mode(self, remaining_fraction: float) -> OperatingMode:
        """Pick the operating mode for a battery state of charge."""
        if not 0.0 <= remaining_fraction <= 1.0:
            raise ConfigurationError(
                f"remaining fraction must be in [0, 1], "
                f"got {remaining_fraction}")
        if remaining_fraction > self.periodic_threshold:
            return self.modes["continuous"]
        if remaining_fraction > self.low_power_threshold:
            return self.modes["periodic"]
        return self.modes["low_power"]

    def mode_current_ma(self, mode: OperatingMode) -> float:
        """Average current drawn in a mode."""
        return self.budget.average_current_ma(mode.duty_cycles)

    def simulate_discharge(self, step_hours: float = 0.5,
                           max_hours: float = 24_000.0,
                           adaptive: bool = True) -> DischargeResult:
        """Integrate the battery state until empty.

        ``adaptive=False`` pins the PMU to continuous mode, reproducing
        the paper's fixed operating point; ``adaptive=True`` lets the
        threshold policy stretch the tail of the discharge.
        """
        if step_hours <= 0 or max_hours <= 0:
            raise ConfigurationError("step and horizon must be positive")
        remaining_mah = self.battery_mah
        t = 0.0
        timeline = [0.0]
        fractions = [1.0]
        names = []
        while remaining_mah > 0 and t < max_hours:
            fraction = remaining_mah / self.battery_mah
            mode = (self.select_mode(fraction) if adaptive
                    else self.modes["continuous"])
            current = self.mode_current_ma(mode)
            if current <= 0:
                raise ConfigurationError(
                    f"mode {mode.name!r} draws no current; "
                    "simulation cannot terminate")
            drained = current * step_hours
            if drained >= remaining_mah:
                t += remaining_mah / current
                remaining_mah = 0.0
            else:
                remaining_mah -= drained
                t += step_hours
            timeline.append(t)
            fractions.append(remaining_mah / self.battery_mah)
            names.append(mode.name)
        return DischargeResult(
            lifetime_hours=float(t),
            timeline_hours=np.asarray(timeline),
            remaining_fraction=np.asarray(fractions),
            mode_names=names,
        )
