"""Device simulation: the touch-based acquisition hardware.

Models every block of the Fig 4 architecture: the ECG/ICG sensing
chains (injection, demodulation, amplification), the ADC, the
STM32L151 cycle-cost model, the IMU with posture classification, the
BLE radio, the power budget (Table I) and the PMU — plus the firmware
simulator that composes the streaming pipeline and prices it.
"""

from repro.device.adc import AdcConfig, AdcModel, AdcResult
from repro.device.afe import EcgFrontEnd, IcgFrontEnd
from repro.device.firmware import (
    FirmwareConfig,
    FirmwareResult,
    FirmwareSimulator,
)
from repro.device.imu import (
    GRAVITY_TEMPLATES,
    ImuModel,
    ImuSample,
    PostureClassifier,
)
from repro.device.injector import (
    PAPER_SWEEP_FREQUENCIES_HZ,
    CurrentInjector,
    max_safe_current_ua,
)
from repro.device.mcu import CortexM3Costs, McuModel
from repro.device.pmu import (
    STANDARD_MODES,
    DischargeResult,
    OperatingMode,
    PowerManagementUnit,
)
from repro.device.power import (
    TABLE_I,
    ComponentPower,
    PowerBudget,
    battery_life_hours,
    paper_operating_point,
)
from repro.device.radio import BleRadioModel, ReportPacket

__all__ = [
    "AdcConfig", "AdcModel", "AdcResult",
    "EcgFrontEnd", "IcgFrontEnd",
    "CurrentInjector", "max_safe_current_ua",
    "PAPER_SWEEP_FREQUENCIES_HZ",
    "ImuModel", "ImuSample", "PostureClassifier", "GRAVITY_TEMPLATES",
    "BleRadioModel", "ReportPacket",
    "ComponentPower", "TABLE_I", "PowerBudget", "paper_operating_point",
    "battery_life_hours",
    "OperatingMode", "STANDARD_MODES", "PowerManagementUnit",
    "DischargeResult",
    "CortexM3Costs", "McuModel",
    "FirmwareConfig", "FirmwareResult", "FirmwareSimulator",
]
