"""STM32L151 (Cortex-M3) cycle-cost model.

Prices :class:`~repro.rt.opcount.OpCounts` into CPU cycles and duty
cycle at the paper's 32 MHz clock.  Costs reflect integer/Q15 firmware
(the L151 has no FPU — see :mod:`repro.rt.fixedpoint`): single-cycle
MUL, 2-cycle MLA, 2-12-cycle hardware divide, 2-cycle flash loads
(1 wait state at 32 MHz), and an overhead factor for address
generation, loop control the counts don't capture, and interrupt
entry/exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.rt.opcount import OpCounts

__all__ = ["CortexM3Costs", "McuModel"]


@dataclass(frozen=True)
class CortexM3Costs:
    """Cycles per operation class (Cortex-M3 r2p1 documentation values,
    leaning conservative where the manual gives ranges)."""

    mac: float = 2.0      # MLA: 2 cycles
    mul: float = 1.0      # MUL: 1 cycle
    add: float = 1.0
    div: float = 7.0      # UDIV/SDIV: 2-12, mid-range typical
    cmp: float = 1.0
    abs: float = 1.0
    load: float = 2.0     # LDR with 1 flash wait state at 32 MHz
    store: float = 2.0
    branch: float = 2.5   # taken branch: 2-3 cycles (pipeline refill)
    sqrt: float = 35.0    # software integer sqrt routine

    #: Multiplier covering addressing, loop bookkeeping, stack traffic
    #: and IRQ overhead not visible in kernel-level op counts.
    overhead_factor: float = 1.30

    def __post_init__(self) -> None:
        for name in ("mac", "mul", "add", "div", "cmp", "abs", "load",
                     "store", "branch", "sqrt"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} cost must be >= 0")
        if self.overhead_factor < 1.0:
            raise ConfigurationError("overhead factor must be >= 1")

    def cycles(self, ops: OpCounts) -> float:
        """Cycle price of an operation tally."""
        raw = (ops.mac * self.mac + ops.mul * self.mul + ops.add * self.add
               + ops.div * self.div + ops.cmp * self.cmp
               + ops.abs * self.abs + ops.load * self.load
               + ops.store * self.store + ops.branch * self.branch
               + ops.sqrt * self.sqrt)
        return raw * self.overhead_factor

    @classmethod
    def software_float(cls) -> "CortexM3Costs":
        """Costs for single-precision *software* floating point.

        The STM32L151 has no FPU, so a straightforward C implementation
        calls the gcc soft-float routines: ~25 cycles per add/sub, ~30
        per multiply, ~50 per fused op, >100 per divide (AAPCS
        __aeabi_f* timings on Cortex-M3).  This is the regime that makes
        the paper's 40-50 % duty-cycle figure reproducible; the Q15
        default shows what fixed-point rewriting would buy.
        """
        return cls(mac=55.0, mul=30.0, add=25.0, div=120.0, cmp=12.0,
                   abs=4.0, load=2.0, store=2.0, branch=2.5, sqrt=350.0,
                   overhead_factor=1.30)

    @classmethod
    def software_double(cls) -> "CortexM3Costs":
        """Costs for *double*-precision software floating point.

        Plain C code with ``double`` literals (the language default)
        lands here: __aeabi_d* routines cost roughly twice their
        single-precision counterparts and every operand is two words.
        This is the regime a first-pass, unoptimised firmware build
        actually runs in — and the one that reproduces the paper's
        40-50 % CPU duty figure (see the CPU bench).
        """
        return cls(mac=100.0, mul=55.0, add=45.0, div=220.0, cmp=18.0,
                   abs=6.0, load=3.0, store=3.0, branch=2.5, sqrt=600.0,
                   overhead_factor=1.30)


@dataclass(frozen=True)
class McuModel:
    """The device's processor: clock plus cost model.

    The paper runs the STM32L151 at its 32 MHz maximum.
    """

    clock_hz: float = 32_000_000.0
    costs: CortexM3Costs = field(default_factory=CortexM3Costs)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")

    def duty_cycle(self, ops_per_sample: OpCounts, fs: float) -> float:
        """CPU duty cycle for a per-sample workload at rate ``fs``.

        This is the quantity Section V reports as 40-50 %.
        """
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        cycles_per_second = self.costs.cycles(ops_per_sample) * fs
        return cycles_per_second / self.clock_hz

    def headroom_fs(self, ops_per_sample: OpCounts,
                    max_duty: float = 1.0) -> float:
        """Highest sampling rate sustainable at the given duty budget."""
        if not 0.0 < max_duty <= 1.0:
            raise ConfigurationError("max_duty must be in (0, 1]")
        cycles_per_sample = self.costs.cycles(ops_per_sample)
        if cycles_per_sample <= 0:
            raise ConfigurationError("workload has zero cost")
        return max_duty * self.clock_hz / cycles_per_sample
