"""Excitation current source for the ICG measurement.

The flowchart of Fig 3 starts with "set the frequency of the current we
inject".  This model validates the programmable frequency/amplitude
against the safety envelope of IEC 60601-1 (patient auxiliary current:
100 uA rms below 1 kHz, rising proportionally with frequency and capped
at 10 mA) and computes the developed voltage across a pathway — the raw
quantity the voltage front-end amplifies.

The paper uses 50 kHz for the systolic-interval work (citing Kyle et
al. on current penetration) and sweeps {2, 10, 50, 100} kHz for the
position study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, HardwareError

__all__ = ["CurrentInjector", "PAPER_SWEEP_FREQUENCIES_HZ",
           "max_safe_current_ua"]

#: The four injection frequencies of the paper's experiment.
PAPER_SWEEP_FREQUENCIES_HZ = (2_000.0, 10_000.0, 50_000.0, 100_000.0)


def max_safe_current_ua(frequency_hz: float) -> float:
    """IEC 60601-1 patient auxiliary current limit (rms) at a given
    frequency: 100 uA below 1 kHz, ``100 uA * f/1 kHz`` above, capped
    at 10 mA."""
    if frequency_hz <= 0:
        raise ConfigurationError("frequency must be positive")
    if frequency_hz <= 1_000.0:
        return 100.0
    return min(10_000.0, 100.0 * frequency_hz / 1_000.0)


@dataclass(frozen=True)
class CurrentInjector:
    """Programmable constant-current source.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency (adjustable per Fig 3; 1-150 kHz supported).
    amplitude_ua:
        RMS current in microampere; validated against the safety limit
        at construction.
    output_impedance_ohm:
        Source output impedance; a finite value makes the injected
        current sag into high-impedance (poorly coupled) loads — one of
        the mechanisms behind the device's low-frequency roll-off.
    """

    frequency_hz: float = 50_000.0
    amplitude_ua: float = 400.0
    output_impedance_ohm: float = 1.0e6

    def __post_init__(self) -> None:
        if not 1_000.0 <= self.frequency_hz <= 150_000.0:
            raise HardwareError(
                f"injection frequency {self.frequency_hz} Hz outside the "
                f"supported 1-150 kHz range")
        limit = max_safe_current_ua(self.frequency_hz)
        if not 0.0 < self.amplitude_ua <= limit:
            raise HardwareError(
                f"{self.amplitude_ua} uA rms exceeds the IEC 60601-1 "
                f"limit of {limit:.0f} uA at {self.frequency_hz} Hz")
        if self.output_impedance_ohm <= 0:
            raise ConfigurationError("output impedance must be positive")

    def delivered_current_ua(self, load_ohm: float) -> float:
        """Actual rms current into a load (current-divider sag)."""
        if load_ohm < 0:
            raise ConfigurationError("load must be >= 0")
        return self.amplitude_ua * self.output_impedance_ohm / (
            self.output_impedance_ohm + load_ohm)

    def developed_voltage_mv(self, impedance_ohm) -> np.ndarray:
        """RMS voltage developed across a (possibly time-varying)
        measured impedance, in millivolt."""
        z = np.asarray(impedance_ohm, dtype=float)
        if np.any(z < 0):
            raise ConfigurationError("impedance must be >= 0")
        current_a = self.delivered_current_ua(float(np.mean(z))) * 1e-6
        return z * current_a * 1e3

    def with_frequency(self, frequency_hz: float) -> "CurrentInjector":
        """Copy of this injector at a different carrier frequency,
        re-validated against the safety envelope."""
        return CurrentInjector(frequency_hz, self.amplitude_ua,
                               self.output_impedance_ohm)

    @classmethod
    def safe_for(cls, frequency_hz: float,
                 margin: float = 0.8) -> "CurrentInjector":
        """An injector at ``margin`` times the safety limit for the
        given frequency — what the firmware programs when sweeping the
        2-100 kHz frequencies of the protocol."""
        if not 0.0 < margin <= 1.0:
            raise ConfigurationError(f"margin must be in (0, 1], got {margin}")
        amplitude = margin * max_safe_current_ua(frequency_hz)
        return cls(frequency_hz, amplitude)
