"""Accelerometer + gyroscope model and posture classification.

Section III-A: "the accelerometer and gyroscope sense motion, which are
used to distinguish different positions."  Each protocol position puts
gravity along a different device axis:

* Position 1 — device held against the chest: gravity along the
  device's -Y (device upright against the sternum);
* Position 2 — arms outstretched forward: the device faces up, gravity
  along -Z;
* Position 3 — arms hanging: the device points down, gravity along +X.

The classifier matches the low-passed accelerometer vector against
those templates; the gyroscope RMS gates *stability* (a reading taken
while the arm is still swinging is rejected, which the acquisition
loop of Fig 3 uses to re-prompt the user).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SignalError

__all__ = ["ImuSample", "ImuModel", "PostureClassifier",
           "GRAVITY_TEMPLATES"]

#: Earth gravity in m/s^2.
G = 9.81

#: Unit gravity direction in device coordinates per protocol position.
GRAVITY_TEMPLATES = {
    1: np.array([0.0, -1.0, 0.15]) / np.linalg.norm([0.0, -1.0, 0.15]),
    2: np.array([0.0, -0.15, -1.0]) / np.linalg.norm([0.0, -0.15, -1.0]),
    3: np.array([1.0, -0.2, 0.0]) / np.linalg.norm([1.0, -0.2, 0.0]),
}


@dataclass(frozen=True)
class ImuSample:
    """One IMU reading: 3-axis accel (m/s^2) and gyro (rad/s)."""

    accel: np.ndarray
    gyro: np.ndarray

    def __post_init__(self) -> None:
        accel = np.asarray(self.accel, dtype=float)
        gyro = np.asarray(self.gyro, dtype=float)
        if accel.shape != (3,) or gyro.shape != (3,):
            raise ConfigurationError("accel and gyro must be 3-vectors")
        object.__setattr__(self, "accel", accel)
        object.__setattr__(self, "gyro", gyro)


class ImuModel:
    """Generates IMU streams for a subject holding a protocol position.

    Tremor shows up as band-limited acceleration noise plus small
    angular rates; the ``tremor_level`` parameter matches the position
    scaling used for the impedance motion artifacts, keeping the two
    modalities consistent.
    """

    def __init__(self, fs: float = 50.0, accel_noise_ms2: float = 0.05,
                 gyro_noise_rads: float = 0.01) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        if accel_noise_ms2 < 0 or gyro_noise_rads < 0:
            raise ConfigurationError("noise levels must be >= 0")
        self.fs = float(fs)
        self.accel_noise_ms2 = float(accel_noise_ms2)
        self.gyro_noise_rads = float(gyro_noise_rads)

    def simulate(self, position: int, duration_s: float,
                 rng: np.random.Generator,
                 tremor_level: float = 1.0) -> list:
        """A list of :class:`ImuSample` for a held posture."""
        if position not in GRAVITY_TEMPLATES:
            raise ConfigurationError(
                f"position must be one of {sorted(GRAVITY_TEMPLATES)}, "
                f"got {position}")
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if tremor_level < 0:
            raise ConfigurationError("tremor level must be >= 0")
        n = max(1, int(round(duration_s * self.fs)))
        gravity = G * GRAVITY_TEMPLATES[position]
        # Slow postural sway: a random-walk tilt of a few degrees.
        sway = np.cumsum(rng.standard_normal((n, 3)), axis=0)
        sway *= 0.002 * tremor_level
        samples = []
        for k in range(n):
            tilt = sway[k]
            accel = (gravity + G * tilt
                     + self.accel_noise_ms2 * tremor_level
                     * rng.standard_normal(3))
            gyro = (self.gyro_noise_rads * tremor_level
                    * rng.standard_normal(3))
            samples.append(ImuSample(accel=accel, gyro=gyro))
        return samples


class PostureClassifier:
    """Nearest-gravity-template posture classifier with stability gate."""

    def __init__(self, max_angle_deg: float = 35.0,
                 max_gyro_rms_rads: float = 0.25) -> None:
        if not 0.0 < max_angle_deg < 90.0:
            raise ConfigurationError("max angle must be in (0, 90) deg")
        if max_gyro_rms_rads <= 0:
            raise ConfigurationError("gyro gate must be positive")
        self.max_angle_deg = float(max_angle_deg)
        self.max_gyro_rms_rads = float(max_gyro_rms_rads)

    def classify(self, samples) -> int:
        """Classify a window of :class:`ImuSample`.

        Returns the position id (1-3).  Raises :class:`SignalError`
        when the window is unstable (gyro gate) or matches no template
        within the angular tolerance (returns the *rejection* the
        firmware uses to re-prompt the user).
        """
        if not samples:
            raise SignalError("empty IMU window")
        accel = np.mean([s.accel for s in samples], axis=0)
        gyro_rms = float(np.sqrt(np.mean(
            [np.sum(s.gyro**2) for s in samples])))
        if gyro_rms > self.max_gyro_rms_rads:
            raise SignalError(
                f"window unstable: gyro RMS {gyro_rms:.3f} rad/s exceeds "
                f"{self.max_gyro_rms_rads}")
        norm = np.linalg.norm(accel)
        if norm == 0:
            raise SignalError("zero acceleration vector (free fall?)")
        direction = accel / norm
        best_position = None
        best_angle = np.inf
        for position, template in GRAVITY_TEMPLATES.items():
            cosine = float(np.clip(np.dot(direction, template), -1.0, 1.0))
            angle = np.degrees(np.arccos(cosine))
            if angle < best_angle:
                best_angle = angle
                best_position = position
        if best_angle > self.max_angle_deg:
            raise SignalError(
                f"no posture template within {self.max_angle_deg} deg "
                f"(best: position {best_position} at {best_angle:.1f} deg)")
        return best_position
