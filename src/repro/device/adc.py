"""ADC model: sampling and quantization.

The paper's acquisition system samples from 125 Hz up to 16 kHz with up
to 16-bit resolution (the STM32L151's own ADC is 12-bit; the ADS1291
delivers up to 16 significant bits).  This model covers rate
validation, mid-tread uniform quantization with saturation, and
dithered conversion — enough to study resolution/rate trade-offs in the
benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.resample import resample_rate
from repro.errors import ConfigurationError, HardwareError, SignalError

__all__ = ["AdcConfig", "AdcModel", "AdcResult"]

#: The supported sampling range from Section III-A.
MIN_SAMPLE_RATE_HZ = 125.0
MAX_SAMPLE_RATE_HZ = 16_000.0
MAX_RESOLUTION_BITS = 16


@dataclass(frozen=True)
class AdcConfig:
    """Converter configuration.

    ``full_scale`` is the symmetric input range ``[-full_scale,
    +full_scale)`` mapped onto the code space.
    """

    sample_rate_hz: float = 250.0
    resolution_bits: int = 12
    full_scale: float = 2.5
    dither_lsb: float = 0.0

    def __post_init__(self) -> None:
        if not MIN_SAMPLE_RATE_HZ <= self.sample_rate_hz <= MAX_SAMPLE_RATE_HZ:
            raise HardwareError(
                f"sample rate {self.sample_rate_hz} Hz outside the "
                f"device's {MIN_SAMPLE_RATE_HZ}-{MAX_SAMPLE_RATE_HZ} Hz "
                f"range")
        if not 4 <= self.resolution_bits <= MAX_RESOLUTION_BITS:
            raise HardwareError(
                f"resolution {self.resolution_bits} bits outside "
                f"4-{MAX_RESOLUTION_BITS}")
        if self.full_scale <= 0:
            raise ConfigurationError("full scale must be positive")
        if self.dither_lsb < 0:
            raise ConfigurationError("dither must be >= 0")

    @property
    def lsb(self) -> float:
        """Quantization step in input units."""
        return 2.0 * self.full_scale / 2**self.resolution_bits

    @property
    def code_min(self) -> int:
        """Most negative output code."""
        return -(2 ** (self.resolution_bits - 1))

    @property
    def code_max(self) -> int:
        """Most positive output code."""
        return 2 ** (self.resolution_bits - 1) - 1


@dataclass(frozen=True)
class AdcResult:
    """Conversion outcome: integer codes, reconstruction and stats."""

    codes: np.ndarray
    reconstructed: np.ndarray
    clipped_fraction: float
    sample_rate_hz: float


class AdcModel:
    """Uniform mid-tread quantizer with optional resampling and dither."""

    def __init__(self, config: AdcConfig = None,
                 rng: np.random.Generator = None) -> None:
        self.config = config or AdcConfig()
        self._rng = rng or np.random.default_rng(0)

    def convert(self, signal, fs_in: float = None) -> AdcResult:
        """Convert an analog signal to codes.

        When ``fs_in`` differs from the configured rate the signal is
        first resampled (with anti-aliasing on downsampling), modelling
        the front-end's decimation chain.
        """
        x = np.asarray(signal, dtype=float)
        if x.ndim != 1 or x.size == 0:
            raise SignalError("expected a non-empty 1-D signal")
        cfg = self.config
        if fs_in is not None and fs_in != cfg.sample_rate_hz:
            if fs_in <= 0:
                raise ConfigurationError("fs_in must be positive")
            x = resample_rate(x, fs_in, cfg.sample_rate_hz)
        if cfg.dither_lsb > 0:
            x = x + cfg.dither_lsb * cfg.lsb * (
                self._rng.random(x.size) - 0.5)
        raw_codes = np.floor(x / cfg.lsb + 0.5)
        clipped = np.count_nonzero((raw_codes < cfg.code_min)
                                   | (raw_codes > cfg.code_max))
        codes = np.clip(raw_codes, cfg.code_min, cfg.code_max).astype(
            np.int32)
        return AdcResult(
            codes=codes,
            reconstructed=codes.astype(float) * cfg.lsb,
            clipped_fraction=clipped / x.size,
            sample_rate_hz=cfg.sample_rate_hz,
        )

    def snr_theoretical_db(self) -> float:
        """Ideal quantization SNR for a full-scale sine:
        ``6.02 N + 1.76`` dB."""
        return 6.02 * self.config.resolution_bits + 1.76
