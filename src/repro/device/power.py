"""Component power model — Table I and the 106-hour battery claim.

The paper's power argument is bookkeeping over measured component
currents (Table I) and duty cycles: the signal chain (ECG + ICG chips)
runs continuously, the STM32 runs at 40-50 % duty executing the
algorithms, the radio wakes for ~1 % to transmit the derived parameters
(Z0, LVET, PEP, HR) instead of raw samples, and the IMU is only powered
for posture spot-checks.  With a 710 mAh battery this lands at ~106 h,
i.e. more than four days.

This module encodes Table I verbatim and reproduces that arithmetic,
plus general what-if analysis used by the PMU policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ComponentPower",
    "TABLE_I",
    "PowerBudget",
    "paper_operating_point",
    "battery_life_hours",
]


@dataclass(frozen=True)
class ComponentPower:
    """One row of Table I: a component's active and standby currents."""

    name: str
    active_ma: float
    standby_ma: float = 0.0

    def __post_init__(self) -> None:
        if self.active_ma < 0 or self.standby_ma < 0:
            raise ConfigurationError(
                f"currents must be >= 0 for {self.name!r}")
        if self.standby_ma > self.active_ma:
            raise ConfigurationError(
                f"standby current exceeds active for {self.name!r}")

    def average_ma(self, duty_cycle: float) -> float:
        """Average current at a given duty cycle (0 = always standby)."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty cycle must be in [0, 1], got {duty_cycle}")
        return duty_cycle * self.active_ma + (1.0 - duty_cycle) * self.standby_ma


#: Table I of the paper, exactly as printed (average currents in mA).
TABLE_I = {
    "ecg_chip": ComponentPower("ECG chip", active_ma=0.400),
    "icg_chip": ComponentPower("ICG chip", active_ma=0.900),
    "mcu": ComponentPower("STM32L151", active_ma=10.500, standby_ma=0.020),
    "radio": ComponentPower("Radio", active_ma=11.000, standby_ma=0.002),
    "imu": ComponentPower("Gyroscope + Accelerometer", active_ma=3.800),
}


class PowerBudget:
    """Average-current bookkeeping over a set of components.

    Components not mentioned in ``duty_cycles`` are treated as
    *unpowered* (0 mA) — the paper's battery-life figure excludes the
    IMU, which is only energised for posture spot-checks.
    """

    def __init__(self, components: dict = None) -> None:
        self.components = dict(components or TABLE_I)
        if not self.components:
            raise ConfigurationError("power budget needs components")

    def average_current_ma(self, duty_cycles: dict) -> float:
        """Total average current for the given per-component duties."""
        unknown = set(duty_cycles) - set(self.components)
        if unknown:
            raise ConfigurationError(
                f"unknown components {sorted(unknown)}; have "
                f"{sorted(self.components)}")
        total = 0.0
        for key, duty in duty_cycles.items():
            total += self.components[key].average_ma(duty)
        return total

    def battery_life_hours(self, capacity_mah: float,
                           duty_cycles: dict) -> float:
        """Runtime on a battery of ``capacity_mah`` at the given duties."""
        if capacity_mah <= 0:
            raise ConfigurationError("battery capacity must be positive")
        current = self.average_current_ma(duty_cycles)
        if current <= 0:
            raise ConfigurationError(
                "average current is zero; lifetime unbounded")
        return capacity_mah / current

    def sweep_mcu_duty(self, capacity_mah: float, base_duty: dict,
                       duties) -> np.ndarray:
        """Battery life across a sweep of MCU duty cycles (what-if)."""
        results = []
        for duty in duties:
            cycles = dict(base_duty)
            cycles["mcu"] = float(duty)
            results.append(self.battery_life_hours(capacity_mah, cycles))
        return np.asarray(results)


def paper_operating_point() -> dict:
    """Duty cycles of the paper's continuous-monitoring worst case.

    Section VI: 50 % MCU duty, 1 % radio duty, signal chain always on,
    IMU unpowered.  Feeding these into Table I with the 710 mAh battery
    reproduces the 106-hour figure.
    """
    return {
        "ecg_chip": 1.0,
        "icg_chip": 1.0,
        "mcu": 0.50,
        "radio": 0.01,
        "imu": 0.0,
    }


def battery_life_hours(capacity_mah: float = 710.0,
                       duty_cycles: dict = None) -> float:
    """The paper's headline number: defaults reproduce ~106 hours."""
    budget = PowerBudget()
    return budget.battery_life_hours(capacity_mah,
                                     duty_cycles or paper_operating_point())
