"""Session supervision: the per-session state machine of the daemon.

A long-running analysis service multiplexes many device sessions over
one drain loop; the failure domain must stay the *session*, never the
service.  The supervisor gives every session an explicit lifecycle —

    ACCEPTING → DRAINING → FINALIZING → DONE
         \\          \\          \\
          +----------─+─---------+--→ QUARANTINED --→ ACCEPTING
                                        (re-ingest)

— and refuses every other edge with a
:class:`~repro.errors.SupervisorError`, so a bug in the daemon cannot
silently revive a finished session or finalize one that never drained.
The states:

* **ACCEPTING** — chunks are arriving (or expected); the journal holds
  a growing prefix of the session.
* **DRAINING** — the trailer chunk landed; the session's journal
  writes are being barriered before finalize (the
  manifest-after-records invariant).
* **FINALIZING** — the assembled recording was submitted to the
  finalize pool; a deadline clock runs against it.
* **DONE** — terminal: the stage-graph result was delivered.
* **QUARANTINED** — isolated: stalled past its chunk deadline,
  finalize timed out or repeatedly killed its worker, or the journal
  flagged its records damaged.  Neighbour sessions never notice.  The
  only exit is an explicit re-ingest
  (:meth:`~repro.ingest.recovery.RecoveryManager.reingest`), which
  readmits the session from seq 0 — modelled here as the
  QUARANTINED → ACCEPTING edge.

Each :class:`SessionRecord` also carries the bookkeeping the policies
act on: next expected sequence number, chunk count, monotonic stamps
of the last chunk and the finalize submission, retry attempts, and the
quarantine reason.  Terminal transitions credit the process-wide
:class:`~repro.ingest.stats.IngestStats` serve counters, so the status
endpoint and ``repro cache-stats`` read one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SupervisorError
from repro.ingest.stats import ingest_stats

__all__ = ["ACCEPTING", "DRAINING", "FINALIZING", "DONE", "QUARANTINED",
           "SESSION_STATES", "LEGAL_TRANSITIONS", "SessionRecord",
           "SessionSupervisor"]

ACCEPTING = "accepting"
DRAINING = "draining"
FINALIZING = "finalizing"
DONE = "done"
QUARANTINED = "quarantined"

#: Every supervised state, in lifecycle order.
SESSION_STATES = (ACCEPTING, DRAINING, FINALIZING, DONE, QUARANTINED)

#: The complete legal edge set; anything else raises.  QUARANTINED →
#: ACCEPTING is the re-ingest re-admission and resets the record.
LEGAL_TRANSITIONS = frozenset({
    (ACCEPTING, DRAINING),
    (DRAINING, FINALIZING),
    (FINALIZING, DONE),
    (ACCEPTING, QUARANTINED),
    (DRAINING, QUARANTINED),
    (FINALIZING, QUARANTINED),
    (QUARANTINED, ACCEPTING),
})


@dataclass
class SessionRecord:
    """One supervised session's live bookkeeping."""

    session_id: str
    state: str = ACCEPTING
    #: Sequence number the daemon expects next (duplicates below it
    #: are idempotent transport noise; above it is a gap → quarantine).
    next_seq: int = 0
    n_chunks: int = 0
    #: Monotonic stamp of the last chunk consumed (deadline clock).
    last_chunk_monotonic: Optional[float] = None
    #: Monotonic stamp of the finalize submission (timeout clock).
    submitted_monotonic: Optional[float] = None
    #: Failed finalize/journal attempts the retry policy has consumed.
    attempts: int = 0
    #: Why the session was quarantined (``None`` otherwise).
    reason: Optional[str] = None
    #: State history, ``(from, to)`` edges in order (telemetry/tests).
    history: list = field(default_factory=list)


class SessionSupervisor:
    """Own every session's state machine; enforce the edge table.

    The supervisor is deliberately passive — it validates and records
    transitions and keeps the counters, while the daemon decides
    *when* to transition.  That keeps the state machine unit-testable
    as a table (the satellite suite sweeps every ``(from, to)`` pair)
    independent of queues, pools and clocks.
    """

    def __init__(self) -> None:
        self._sessions: dict = {}

    # -- admission ---------------------------------------------------------

    def accept(self, session_id: str) -> SessionRecord:
        """Admit a new session in ACCEPTING; raises when it exists."""
        if session_id in self._sessions:
            raise SupervisorError(
                f"session {session_id!r} is already supervised "
                f"(state {self._sessions[session_id].state})")
        record = SessionRecord(session_id=session_id)
        self._sessions[session_id] = record
        ingest_stats().add(serve_sessions_accepted=1)
        return record

    def get(self, session_id: str) -> Optional[SessionRecord]:
        """The session's record, or ``None`` when unsupervised."""
        return self._sessions.get(session_id)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    # -- transitions -------------------------------------------------------

    def transition(self, session_id: str, state: str,
                   reason: Optional[str] = None) -> SessionRecord:
        """Move a session along one legal edge; raises
        :class:`~repro.errors.SupervisorError` on an unknown session,
        an unknown state, or an edge outside the table."""
        record = self._sessions.get(session_id)
        if record is None:
            raise SupervisorError(
                f"session {session_id!r} is not supervised")
        if state not in SESSION_STATES:
            raise SupervisorError(
                f"unknown session state {state!r}; choose from "
                f"{SESSION_STATES}")
        edge = (record.state, state)
        if edge not in LEGAL_TRANSITIONS:
            raise SupervisorError(
                f"illegal transition {record.state} -> {state} for "
                f"session {session_id!r}")
        record.history.append(edge)
        record.state = state
        if state == QUARANTINED:
            record.reason = reason
            ingest_stats().add(serve_sessions_quarantined=1)
        elif state == DONE:
            ingest_stats().add(serve_sessions_done=1)
        elif edge == (QUARANTINED, ACCEPTING):
            # Re-ingest readmission: the journal accepts the session
            # again from seq 0, so the bookkeeping restarts with it.
            record.next_seq = 0
            record.n_chunks = 0
            record.attempts = 0
            record.reason = None
            record.last_chunk_monotonic = None
            record.submitted_monotonic = None
            ingest_stats().add(serve_sessions_accepted=1)
        return record

    def quarantine(self, session_id: str, reason: str) -> SessionRecord:
        """Shorthand: move a session to QUARANTINED with a reason."""
        return self.transition(session_id, QUARANTINED, reason=reason)

    # -- views -------------------------------------------------------------

    def records(self) -> tuple:
        """Every supervised record (insertion order)."""
        return tuple(self._sessions.values())

    def in_state(self, state: str) -> tuple:
        """Records currently in ``state``."""
        return tuple(r for r in self._sessions.values()
                     if r.state == state)

    def states(self) -> dict:
        """``{session_id: state}`` for the status endpoint."""
        return {sid: record.state
                for sid, record in self._sessions.items()}

    def counts(self) -> dict:
        """Sessions per state (every state present, zeros included)."""
        counts = {state: 0 for state in SESSION_STATES}
        for record in self._sessions.values():
            counts[record.state] += 1
        return counts

    @property
    def all_terminal(self) -> bool:
        """Whether every supervised session is DONE or QUARANTINED."""
        return all(record.state in (DONE, QUARANTINED)
                   for record in self._sessions.values())
