"""Health/status endpoint of the serve daemon.

``repro serve`` binds a unix-domain socket (``serve.sock`` inside the
journal directory) and answers every connection with one JSON status
document, then closes — the ``/healthz`` idiom without an HTTP stack:
``repro serve --status --journal DIR`` (or any ``nc -U``) reads it.

The document is assembled from the same objects the daemon runs on —
the :class:`~repro.serve.supervisor.SessionSupervisor`, the
:class:`~repro.serve.policies.DegradationLadder`, the work queue's
:class:`~repro.ingest.workqueue.QueueStats` and the process-wide
:class:`~repro.ingest.stats.IngestStats` — so the endpoint cannot
drift from reality; there is no second bookkeeping to go stale.

Top-level shape::

    {"ok": true|false,            # false once degraded or draining
     "state": "serving|draining|stopped",
     "degradation": {"level": 0, "name": "normal"},
     "sessions": {"counts": {...}, "by_id": {...}},
     "queue": {"depth": 3, "buffered_bytes": ..., ...},
     "jobs": [{"name": "journal-gc", ...}, ...],
     "stats": {... ingest_stats().as_dict() ...}}
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Callable, Optional

from repro.errors import ReproError

__all__ = ["HealthServer", "read_status", "STATUS_SOCKET_NAME"]

#: Socket filename inside the daemon's journal directory.
STATUS_SOCKET_NAME = "serve.sock"


class HealthServer:
    """Serve one JSON status document per unix-socket connection.

    ``snapshot`` is called under no daemon locks at request time and
    must return a JSON-serializable dict; the server thread is a
    daemon thread so a crashing service never blocks on it.
    """

    def __init__(self, path: str,
                 snapshot: Callable[[], dict]) -> None:
        self.path = str(path)
        self.snapshot = snapshot
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def start(self) -> "HealthServer":
        """Bind the socket and start answering; returns self."""
        if self._thread is not None:
            return self
        # A stale socket file from a crashed daemon would make bind()
        # fail; boot recovery owns the directory, so reclaim it.
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(self.path)
        sock.listen(8)
        sock.settimeout(0.2)
        self._sock = sock
        self._thread = threading.Thread(
            target=self._loop, name="serve-health", daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            try:
                payload = json.dumps(self.snapshot()).encode("utf-8")
            except Exception as exc:
                payload = json.dumps(
                    {"ok": False,
                     "error": f"{type(exc).__name__}: {exc}"},
                ).encode("utf-8")
            try:
                conn.sendall(payload)
            except OSError:
                pass  # reader went away; its loss
            finally:
                conn.close()

    def stop(self) -> None:
        """Stop answering and remove the socket file (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def read_status(path: str, timeout: float = 5.0) -> dict:
    """Connect to a daemon's status socket and return its JSON
    document; raises :class:`~repro.errors.ReproError` when no daemon
    answers there."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(str(path))
        parts = []
        while True:
            data = client.recv(65536)
            if not data:
                break
            parts.append(data)
    except (OSError, socket.timeout) as exc:
        raise ReproError(
            f"no serve daemon answering at {path}: {exc}") from exc
    finally:
        client.close()
    raw = b"".join(parts)
    if not raw:
        raise ReproError(f"serve daemon at {path} sent an empty status")
    try:
        return json.loads(raw.decode("utf-8"))
    except ValueError as exc:
        raise ReproError(
            f"serve daemon at {path} sent malformed status") from exc
