"""The serve daemon: a supervised, always-on ingest-and-analyse loop.

``repro serve`` wraps the batch-shaped ingest machinery — bounded work
queue, chunk journal write-through, session assembler,
:class:`~repro.ingest.streaming.FinalizeDispatcher` — in a process
that is *meant to stay up*:

* every session runs under the :mod:`~repro.serve.supervisor` state
  machine, so one stalled, gapped, damaged or finalize-poisoned
  session is quarantined alone while its neighbours keep flowing;
* :class:`~repro.serve.policies.DeadlinePolicy` turns silence into
  action (a source that stops sending past its chunk deadline, a
  finalize that outlives its timeout) and
  :class:`~repro.serve.policies.RetryPolicy` gives transient faults —
  a finalize pool broken by a killed worker, an ``OSError`` from the
  journal's disk — a capped-exponential second chance;
* overload degrades instead of failing: the
  :class:`~repro.serve.policies.DegradationLadder` first sheds *new*
  sessions (admission class; journaled sessions are never dropped),
  then collapses group-commit durability to strict so backpressure
  reaches producers instead of memory;
* boot **is** recovery: :meth:`ServeDaemon.serve` reopens the journal
  (healing any torn tail), replays every journaled chunk through the
  very same consume path live chunks take (appends are idempotent
  no-ops), finalizes sessions whose trailer is on disk, resumes open
  ones from their live source, and quarantines damaged ones — so a
  SIGKILL at any instant costs nothing that was accepted;
* a unix-socket health endpoint (:mod:`~repro.serve.health`) answers
  ``repro serve --status`` with the supervisor's, ladder's and
  journal's live numbers.

Graceful shutdown (:meth:`ServeDaemon.stop`, or SIGTERM via the CLI)
closes the queue — blocked producers fail with
:class:`~repro.errors.QueueClosedError` instead of hanging — drains
what is buffered, finalizes every session whose trailer arrived,
flushes the journal and exits; sessions still awaiting chunks stay
open *in the journal*, which is exactly the durable state the next
boot resumes from.
"""

from __future__ import annotations

import threading
import time
import warnings
from pathlib import Path
from typing import Optional

from repro.core.cache import FilterDesignCache
from repro.core.config import PipelineConfig
from repro.errors import (
    ConfigurationError,
    JournalError,
    QueueClosedError,
    ReproError,
    SupervisorError,
)
from repro.ingest.chunks import SessionAssembler
from repro.ingest.gc import journal_gc
from repro.ingest.journal import ChunkJournal, DURABILITY_MODES
from repro.ingest.recovery import RecoveryManager
from repro.ingest.stats import ingest_stats
from repro.ingest.streaming import FinalizeDispatcher, SessionResult
from repro.ingest.workqueue import BoundedWorkQueue
from repro.io.archive import archive_sessions
from repro.serve.health import HealthServer, STATUS_SOCKET_NAME
from repro.serve.policies import (
    DEGRADATION_LEVELS,
    DeadlinePolicy,
    DegradationLadder,
    PeriodicJob,
    RetryPolicy,
    SHED_NEW,
    STRICT_DURABILITY,
)
from repro.serve.supervisor import (
    ACCEPTING,
    DONE,
    DRAINING,
    FINALIZING,
    QUARANTINED,
    SessionSupervisor,
)

__all__ = ["ServeDaemon"]

_SHED_LEVEL = DEGRADATION_LEVELS.index(SHED_NEW)
_STRICT_LEVEL = DEGRADATION_LEVELS.index(STRICT_DURABILITY)


class ServeDaemon:
    """Supervise many concurrent device sessions over one journal.

    Parameters
    ----------
    journal_dir:
        The journal directory the daemon owns — its durable state and
        the root of its status socket.  Created when missing; a
        directory holding a previous (crashed or drained) run is the
        normal case, not an error: boot replays it.
    config / cache:
        Stage configuration and filter-design cache, as everywhere
        else; recovery bit-identity requires serving the same
        configuration the interrupted run used.
    n_workers / finalize_backend:
        Finalize pool shape, exactly as
        :class:`~repro.ingest.streaming.StreamingExecutor` takes them.
    max_chunks / max_bytes:
        Ingest queue bounds; also the denominator of the overload
        ladder's pressure signal.
    durability / fsync / segment_records:
        Journal knobs (see :class:`~repro.ingest.journal.ChunkJournal`).
        ``durability`` is the *configured* mode; the ladder may
        temporarily force ``"strict"`` under overload and restores
        this mode when pressure clears.
    deadline / retry:
        The :class:`~repro.serve.policies.DeadlinePolicy` and
        :class:`~repro.serve.policies.RetryPolicy`; defaults disable
        deadlines and allow two attempts.
    high_water / low_water:
        The ladder's hysteresis band, as fractions of queue capacity.
    gc_interval_s / archive_dir / archive_interval_s:
        When set, journal garbage collection and cold-tier archival
        run as supervised :class:`~repro.serve.policies.PeriodicJob`
        timers (contained failures, backoff on streaks).
    health:
        Whether to bind the status socket
        (``journal_dir/serve.sock``).
    crash_hook:
        Fault-injection instrumentation, the
        :func:`~repro.ingest.gc.journal_gc` convention: called as
        ``crash_hook(stage, detail)`` at every durable step and may
        raise to simulate a SIGKILL at that exact point.
    poll_interval_s:
        Drain-loop tick while idle — the cadence of deadline checks
        and finalize reaping.
    """

    def __init__(self, journal_dir,
                 config: Optional[PipelineConfig] = None,
                 n_workers: int = 2,
                 finalize_backend: str = "thread",
                 max_chunks: Optional[int] = 64,
                 max_bytes: Optional[int] = None,
                 durability: str = "strict",
                 fsync: bool = False,
                 segment_records: Optional[int] = None,
                 deadline: Optional[DeadlinePolicy] = None,
                 retry: Optional[RetryPolicy] = None,
                 high_water: float = 0.8,
                 low_water: float = 0.3,
                 gc_interval_s: Optional[float] = None,
                 archive_dir=None,
                 archive_interval_s: Optional[float] = None,
                 cache: Optional[FilterDesignCache] = None,
                 health: bool = True,
                 crash_hook=None,
                 poll_interval_s: float = 0.05) -> None:
        if durability not in DURABILITY_MODES:
            raise ConfigurationError(
                f"unknown durability {durability!r}; "
                f"choose from {DURABILITY_MODES}")
        if archive_interval_s is not None and archive_dir is None:
            raise ConfigurationError(
                "archive_interval_s needs archive_dir")
        self.directory = Path(journal_dir)
        self.config = config
        self.n_workers = int(n_workers)
        self.max_chunks = max_chunks
        self.max_bytes = max_bytes
        self.configured_durability = durability
        self.fsync = bool(fsync)
        self.segment_records = segment_records
        self.deadline = deadline or DeadlinePolicy()
        self.retry = retry or RetryPolicy()
        self.gc_interval_s = gc_interval_s
        self.archive_dir = archive_dir
        self.archive_interval_s = archive_interval_s
        self.health = bool(health)
        self.crash_hook = crash_hook
        self.poll_interval_s = float(poll_interval_s)

        self.supervisor = SessionSupervisor()
        self.ladder = DegradationLadder(high_water=high_water,
                                        low_water=low_water)
        self._dispatcher = FinalizeDispatcher(config, finalize_backend,
                                              cache)
        self.finalize_backend = self._dispatcher.backend
        self.cache = self._dispatcher.cache

        self.journal: Optional[ChunkJournal] = None
        self._jlock = threading.RLock()
        self.results: dict = {}
        self.source_errors: list = []
        self._assembler = SessionAssembler()
        self._pending: dict = {}      # sid -> (future, arena, recording)
        self._first_arrival: dict = {}
        self._last_arrival: dict = {}
        self._shed: set = set()
        self._queue: Optional[BoundedWorkQueue] = None
        self._jobs: list = []
        self._health_server: Optional[HealthServer] = None
        self._stop = threading.Event()
        self._state = "idle"

    # -- instrumentation ---------------------------------------------------

    @property
    def socket_path(self) -> Path:
        """Where the status socket lives (bound only while serving)."""
        return self.directory / STATUS_SOCKET_NAME

    def _crash(self, stage: str, detail: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(stage, detail)

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Request a graceful drain (idempotent, signal-safe): stop
        admitting, finish what is buffered and submitted, flush, exit.
        The CLI wires SIGTERM/SIGINT here."""
        self._stop.set()

    def serve(self, sources=(), once: bool = True) -> dict:
        """Boot-recover the journal, then serve ``sources``.

        Each source is any chunk iterable (a
        :class:`~repro.ingest.fleet.DeviceFleet`, a live adapter); one
        producer thread feeds each into the shared bounded queue, so a
        stalled source blocks only itself.  With ``once`` the daemon
        exits when every source is exhausted and every submitted
        finalize resolved; without it, it runs until :meth:`stop`.

        Returns ``{session_id: SessionResult}`` for every session
        finalized this run (including those recovered from the
        journal).  A source that raises is recorded in
        :attr:`source_errors` and does not take the service down.
        """
        if self._state in ("serving", "draining"):
            raise ReproError("daemon is already serving")
        self._stop.clear()
        self._state = "booting"
        self.results = {}
        self.source_errors = []
        self._assembler = SessionAssembler()
        self._pending = {}
        self._first_arrival = {}
        self._last_arrival = {}
        self._shed = set()
        queue = BoundedWorkQueue(max_items=self.max_chunks,
                                 max_bytes=self.max_bytes)
        self._queue = queue
        sources = list(sources)
        draining = False
        try:
            with self._dispatcher.pool_context(self.n_workers) as pool:
                self._boot(pool)
                self._start_maintenance()
                self._state = "serving"
                producers = self._start_producers(sources, queue, once)
                while True:
                    if self._stop.is_set() and not draining:
                        # Graceful drain: no further admission; blocked
                        # producers fail with QueueClosedError instead
                        # of waiting on space no consumer will free.
                        draining = True
                        self._state = "draining"
                        queue.close()
                    burst = queue.drain(timeout=self.poll_interval_s)
                    for chunk in burst:
                        self._consume(chunk, pool, live=True)
                    # Overload is backlog that survives a whole tick:
                    # the queue refilling *while* we consumed means the
                    # service is behind.  (A burst merely filling the
                    # bound is backpressure working, not overload —
                    # sampling the burst size would shed every fast
                    # producer's sessions.)
                    self._update_degradation(len(queue))
                    self._check_deadlines()
                    self._reap_finalizes(pool)
                    if (queue.closed and not burst and len(queue) == 0
                            and not self._pending):
                        break
                self._state = "draining"
                with self._jlock:
                    if self.journal is not None:
                        self.journal.flush()
                self._crash("drained", "")
                self._shutdown_clean(producers)
        finally:
            # Crash paths (SimulatedCrash from a crash_hook stands in
            # for SIGKILL) fall through here: tear down the threads a
            # dead process would lose anyway, but leave the journal
            # *unflushed and unclosed* — faking durability the crash
            # did not have would invalidate every recovery guarantee.
            queue.close()
            self._stop_maintenance()
            self._state = "stopped"
        return dict(self.results)

    def run_once(self, source) -> dict:
        """Serve a single source to completion (convenience)."""
        return self.serve([source], once=True)

    # -- boot recovery -----------------------------------------------------

    def _boot(self, pool) -> None:
        """Reopen the journal and replay it through the live path.

        The reopen scan heals a torn tail; manifests a crash raced
        past are backfilled; damaged sessions are supervised straight
        into QUARANTINED; every good journaled chunk is replayed
        through :meth:`_consume` — the appends no-op idempotently, the
        assembler rebuilds open sessions' partial state, and sessions
        whose trailer is on disk finalize exactly as live ones do.
        """
        with self._jlock:
            self.journal = ChunkJournal(
                self.directory, segment_records=self.segment_records,
                fsync=self.fsync, durability=self.configured_durability)
            scan = self.journal.last_scan
        self._crash("boot-scan", str(self.directory))
        recovery = RecoveryManager(self.directory, self.config,
                                   self.cache)
        recovery._backfill_manifests(scan)
        for sid, reason in scan.damaged.items():
            self.supervisor.accept(sid)
            self.supervisor.quarantine(
                sid, f"journal damage: {reason}")
        for chunk in RecoveryManager._replay(scan):
            self._consume(chunk, pool, live=False)
        self._crash("replayed", f"{scan.n_records} records")

    # -- producers ---------------------------------------------------------

    def _start_producers(self, sources, queue: BoundedWorkQueue,
                         once: bool) -> list:
        remaining = [len(sources)]
        lock = threading.Lock()
        if not sources and once:
            queue.close()

        def produce(source) -> None:
            try:
                for chunk in source:
                    queue.put(chunk)
            except QueueClosedError:
                pass                  # graceful drain reached us first
            except Exception as exc:
                # One device dying is that device's problem, not the
                # service's: record it and keep the others flowing.
                self.source_errors.append(exc)
            finally:
                with lock:
                    remaining[0] -= 1
                    if remaining[0] == 0 and once:
                        queue.close()

        producers = []
        for index, source in enumerate(sources):
            thread = threading.Thread(
                target=produce, args=(source,),
                name=f"serve-source-{index}", daemon=True)
            thread.start()
            producers.append(thread)
        return producers

    # -- maintenance and health --------------------------------------------

    def _start_maintenance(self) -> None:
        self._jobs = []
        if self.gc_interval_s is not None:
            self._jobs.append(PeriodicJob(
                "journal-gc", self.gc_interval_s, self._gc_tick,
                retry=self.retry).start())
        if self.archive_interval_s is not None:
            self._jobs.append(PeriodicJob(
                "archive", self.archive_interval_s, self._archive_tick,
                retry=self.retry).start())
        if self.health:
            self._health_server = HealthServer(
                str(self.socket_path), self.status).start()

    def _stop_maintenance(self) -> None:
        for job in self._jobs:
            job.stop()
        if self._health_server is not None:
            self._health_server.stop()
            self._health_server = None

    def _reopen_journal(self, durability: str) -> None:
        self.journal = ChunkJournal(
            self.directory, segment_records=self.segment_records,
            fsync=self.fsync, durability=durability)

    def _gc_tick(self) -> None:
        """One supervised GC sweep: the journal must be closed while
        segments are rewritten (the open append fd would otherwise
        keep writing into a replaced file), so close → sweep → reopen
        under the journal lock."""
        with self._jlock:
            if self.journal is None or self.journal.closed:
                return
            durability = self.journal.durability
            self.journal.close()
            try:
                journal_gc(self.directory)
            finally:
                self._reopen_journal(durability)

    def _archive_tick(self) -> None:
        """One supervised archive sweep (flush first, so the scan the
        archiver takes sees every accepted record)."""
        with self._jlock:
            if self.journal is None or self.journal.closed:
                return
            self.journal.flush()
            archive_sessions(self.directory, self.archive_dir)

    def reingest(self, session_id: str):
        """Readmit a quarantined session whose journal records are
        damaged on disk: move them aside
        (:meth:`~repro.ingest.recovery.RecoveryManager.reingest`) and
        drive the QUARANTINED → ACCEPTING edge, after which the device
        may stream the session again from seq 0.

        Sessions quarantined for *live* reasons (stalled source,
        finalize timeout) keep their good records journaled and are
        resumed by the next boot instead; for those this raises
        :class:`~repro.errors.JournalError` untouched.
        """
        record = self.supervisor.get(session_id)
        if record is None or record.state != QUARANTINED:
            raise SupervisorError(
                f"session {session_id!r} is not quarantined")
        with self._jlock:
            # The open append fd must not survive the segment rewrite;
            # a stopped daemon's journal is already closed, and the
            # next serve() reopens it at boot either way.
            durability = None
            if self.journal is not None and not self.journal.closed:
                durability = self.journal.durability
                self.journal.close()
            try:
                report = RecoveryManager(
                    self.directory, self.config,
                    self.cache).reingest(session_id)
            finally:
                if durability is not None:
                    self._reopen_journal(durability)
        self.supervisor.transition(session_id, ACCEPTING)
        self._shed.discard(session_id)
        return report

    # -- degradation -------------------------------------------------------

    def _update_degradation(self, depth: int) -> None:
        if not self.max_chunks:
            return
        level = self.ladder.update(depth / self.max_chunks)
        with self._jlock:
            if self.journal is None:
                return
            if level >= _STRICT_LEVEL:
                self.journal.set_durability("strict")
            else:
                self.journal.set_durability(self.configured_durability)

    # -- the consume path (replay and live chunks alike) -------------------

    def _consume(self, chunk, pool, live: bool) -> None:
        sid = chunk.session_id
        record = self.supervisor.get(sid)
        if record is None:
            if sid in self._shed:
                return
            if (live and self.ladder.level >= _SHED_LEVEL
                    and not self._journaled(sid)):
                # Overload: reject by admission class.  Only sessions
                # with no journaled chunk are sheddable — anything on
                # disk is a durability promise already made.
                self._shed.add(sid)
                ingest_stats().add(serve_sheds=1)
                return
            record = self.supervisor.accept(sid)
        if record.state == QUARANTINED:
            return                        # isolated; ignore its chunks
        if record.state != ACCEPTING:
            return                        # late duplicate past trailer
        if chunk.seq < record.next_seq:
            return                        # idempotent re-send
        if chunk.seq > record.next_seq:
            self.supervisor.quarantine(
                sid, f"sequence gap: got seq {chunk.seq}, "
                     f"expected {record.next_seq}")
            return
        if not self._append_with_retry(chunk, record):
            return
        record.next_seq = chunk.seq + 1
        record.n_chunks += 1
        record.last_chunk_monotonic = time.monotonic()
        self._first_arrival.setdefault(sid, chunk.arrival_s)
        self._last_arrival[sid] = chunk.arrival_s
        if live:
            self._crash("journaled", f"{sid}:{chunk.seq}")
        recording = self._assembler.add(chunk)
        if recording is not None:
            self.supervisor.transition(sid, DRAINING)
            with self._jlock:
                # Trailer barrier: the session's records and manifest
                # must be durable before finalize observes them, so
                # recovery after any later crash replays identically.
                self.journal.flush()
            self.supervisor.transition(sid, FINALIZING)
            self._submit(pool, sid, record, recording)

    def _journaled(self, sid: str) -> bool:
        with self._jlock:
            if self.journal is None:
                return False
            return (self.journal.next_seq(sid) > 0
                    or sid in self.journal.completed_sessions)

    def _append_with_retry(self, chunk, record) -> bool:
        """Write-through with the retry policy; ``False`` when the
        chunk must not be processed (refused, or replay no-op falls
        through to ``True`` — the assembler still needs it)."""
        attempt = 0
        while True:
            try:
                with self._jlock:
                    self.journal.append(chunk)
                return True
            except JournalError as exc:
                # Damaged session or a gap the journal sees that we do
                # not (e.g. its state moved under a GC reopen): this
                # session is untrustworthy, not the service.
                self.supervisor.quarantine(
                    chunk.session_id, f"journal refused chunk: {exc}")
                return False
            except OSError as exc:
                attempt += 1
                if self.retry.exhausted(attempt):
                    raise
                warnings.warn(
                    f"journal append failed ({exc}); retrying",
                    RuntimeWarning, stacklevel=2)
                self.retry.sleep(attempt - 1)

    # -- finalize ----------------------------------------------------------

    def _submit(self, pool, sid: str, record, recording) -> None:
        future, arena = self._dispatcher.submit(pool, recording)
        record.submitted_monotonic = time.monotonic()
        self._pending[sid] = (future, arena, recording)
        self._crash("submitted", sid)

    def _reap_finalizes(self, pool) -> None:
        for sid in list(self._pending):
            future, arena, recording = self._pending[sid]
            # _InlineResult (single thread worker) resolves eagerly
            # and has no done(); treat it as always ready.
            if hasattr(future, "done") and not future.done():
                continue
            record = self.supervisor.get(sid)
            try:
                result = self._dispatcher.resolve(sid, future, arena,
                                                  recording)
            except Exception as exc:
                record.attempts += 1
                if self.retry.exhausted(record.attempts):
                    del self._pending[sid]
                    self.supervisor.quarantine(
                        sid, f"finalize failed after "
                             f"{record.attempts} attempts: {exc}")
                    continue
                self.retry.sleep(record.attempts - 1)
                self._submit(pool, sid, record, recording)
                continue
            del self._pending[sid]
            self.supervisor.transition(sid, DONE)
            self.results[sid] = SessionResult(
                session_id=sid, recording=recording, result=result,
                n_chunks=record.n_chunks,
                first_arrival_s=self._first_arrival.get(sid, 0.0),
                last_arrival_s=self._last_arrival.get(sid, 0.0))
            self._crash("finalized", sid)

    # -- deadlines ---------------------------------------------------------

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for record in self.supervisor.records():
            if (record.state == ACCEPTING
                    and self.deadline.chunk_overdue(
                        record.last_chunk_monotonic, now)):
                ingest_stats().add(serve_deadline_hits=1)
                self.supervisor.quarantine(
                    record.session_id,
                    f"stalled source: no chunk for "
                    f"{self.deadline.chunk_deadline_s:g}s")
            elif (record.state == FINALIZING
                    and self.deadline.finalize_overdue(
                        record.submitted_monotonic, now)):
                ingest_stats().add(serve_deadline_hits=1)
                # The job cannot be interrupted mid-flight; abandon
                # it (its arena is released; a late result is simply
                # dropped) and isolate the session.
                entry = self._pending.pop(record.session_id, None)
                if entry is not None and entry[1] is not None:
                    entry[1].release()
                self.supervisor.quarantine(
                    record.session_id,
                    f"finalize timeout: exceeded "
                    f"{self.deadline.finalize_timeout_s:g}s")

    # -- clean shutdown ----------------------------------------------------

    def _shutdown_clean(self, producers: list) -> None:
        for thread in producers:
            # A producer blocked inside a stalled *source* cannot be
            # joined; it is a daemon thread and dies with the process.
            thread.join(timeout=0.5)
        with self._jlock:
            if self.journal is not None:
                self.journal.close()

    # -- status ------------------------------------------------------------

    def status(self) -> dict:
        """The live status document (what the health socket serves)."""
        queue = self._queue
        with self._jlock:
            journal = None
            if self.journal is not None and self._state != "idle":
                journal = {
                    "directory": str(self.directory),
                    "durability": self.journal.durability,
                    "configured_durability": self.configured_durability,
                    "open_sessions": list(self.journal.open_sessions),
                    "completed_sessions":
                        len(self.journal.completed_sessions),
                    "appended_records": self.journal.appended_records,
                }
        return {
            "ok": self._state == "serving" and not self.ladder.degraded,
            "state": self._state,
            "degradation": {"level": self.ladder.level,
                            "name": self.ladder.name},
            "sessions": {"counts": self.supervisor.counts(),
                         "by_id": self.supervisor.states()},
            "queue": (dict(depth=len(queue),
                           buffered_bytes=queue.buffered_bytes,
                           closed=queue.closed,
                           **queue.stats.as_dict())
                      if queue is not None else None),
            "pending_finalizes": len(self._pending),
            "shed_sessions": sorted(self._shed),
            "source_errors": [f"{type(e).__name__}: {e}"
                              for e in self.source_errors],
            "jobs": [job.stats() for job in self._jobs],
            "journal": journal,
            "stats": ingest_stats().as_dict(),
        }
