"""Robustness policies of the serve daemon: deadlines, retries,
degradation, and supervised periodic jobs.

Policies are plain data + pure decision functions so every edge is
unit-testable without a daemon around it:

* :class:`DeadlinePolicy` — how long a session may go silent between
  chunks before it counts as *stalled*, and how long a finalize may
  run before it counts as *hung*.  Deadline expiry quarantines exactly
  the offending session; neighbours never wait on it.
* :class:`RetryPolicy` — capped exponential backoff for transient
  faults (a finalize pool broken by a killed worker, an ``OSError``
  from the journal's disk).  The constants default to the PR 7
  crash-tolerant fan-out's (:data:`repro.core.executor.RETRY_BACKOFF_S`
  / ``RETRY_BACKOFF_CAP_S``), so a service-level retry waits exactly
  like a batch-level one.
* :class:`DegradationLadder` — the overload response, ordered by what
  it costs users: **NORMAL** → **SHED_NEW** (reject sessions not yet
  admitted; journaled sessions keep flowing) → **STRICT_DURABILITY**
  (group-commit's elastic write buffer is collapsed to
  write-per-append, so backpressure lands on producers instead of
  memory).  Journaled chunks are *never* dropped at any level.
  Escalation trips on queue pressure against the high-water fraction;
  de-escalation requires pressure below the low-water fraction
  (hysteresis, so the ladder does not flap at the boundary).
* :class:`PeriodicJob` — a supervised timer thread for the daemon's
  background maintenance (journal GC, archival): failures are caught,
  counted and retried with the ladder's backoff instead of killing
  the service; the soonest next run after a failure backs off too.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.executor import RETRY_BACKOFF_CAP_S, RETRY_BACKOFF_S
from repro.errors import ConfigurationError
from repro.ingest.stats import ingest_stats

__all__ = ["DeadlinePolicy", "RetryPolicy", "DegradationLadder",
           "DEGRADATION_LEVELS", "NORMAL", "SHED_NEW",
           "STRICT_DURABILITY", "PeriodicJob"]


@dataclass(frozen=True)
class DeadlinePolicy:
    """When silence becomes failure.

    ``chunk_deadline_s`` bounds the gap between consecutive chunks of
    an ACCEPTING session (``None`` disables — a journaled session may
    legitimately stay open across a device dropout and resume later);
    ``finalize_timeout_s`` bounds a FINALIZING session's pool job.
    """

    chunk_deadline_s: Optional[float] = None
    finalize_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("chunk_deadline_s", "finalize_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def chunk_overdue(self, last_chunk_monotonic: Optional[float],
                      now: float) -> bool:
        """Whether an ACCEPTING session has gone silent too long."""
        if self.chunk_deadline_s is None or last_chunk_monotonic is None:
            return False
        return now - last_chunk_monotonic > self.chunk_deadline_s

    def finalize_overdue(self, submitted_monotonic: Optional[float],
                         now: float) -> bool:
        """Whether a FINALIZING session's job has run too long."""
        if self.finalize_timeout_s is None or submitted_monotonic is None:
            return False
        return now - submitted_monotonic > self.finalize_timeout_s


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient faults.

    Attempt ``k`` (0-based) sleeps ``min(base * 2**k, cap)`` seconds;
    after ``max_attempts`` failures the caller escalates (quarantine
    the session, report the job).  The defaults reuse the PR 7
    poisoned-worker fan-out constants.
    """

    max_attempts: int = 2
    base_s: float = RETRY_BACKOFF_S
    cap_s: float = RETRY_BACKOFF_CAP_S

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ConfigurationError(
                "need 0 < base_s <= cap_s for a backoff schedule")

    def backoff_s(self, attempt: int) -> float:
        """The sleep before retrying after failed attempt ``attempt``
        (0-based)."""
        return min(self.base_s * (2 ** max(0, int(attempt))), self.cap_s)

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` failures have used up the budget."""
        return attempts >= self.max_attempts

    def sleep(self, attempt: int) -> float:
        """Sleep the schedule's backoff; returns the seconds slept
        (and credits the serve retry counter)."""
        delay = self.backoff_s(attempt)
        ingest_stats().add(serve_retries=1)
        time.sleep(delay)
        return delay


NORMAL = "normal"
SHED_NEW = "shed-new"
STRICT_DURABILITY = "strict-durability"

#: The ladder in escalation order; index = numeric degradation level.
DEGRADATION_LEVELS = (NORMAL, SHED_NEW, STRICT_DURABILITY)


class DegradationLadder:
    """Overload state with hysteresis.

    ``update(pressure)`` feeds the current load factor (queue depth /
    queue bound, 0..1+) and returns the level the service should run
    at: pressure at or above ``high_water`` climbs one rung per
    update, pressure at or below ``low_water`` descends one rung, and
    the band between holds the level steady — so a service hovering at
    the boundary does not oscillate between shedding and admitting.
    """

    def __init__(self, high_water: float = 0.8,
                 low_water: float = 0.3) -> None:
        if not 0.0 < low_water < high_water <= 1.0:
            raise ConfigurationError(
                "need 0 < low_water < high_water <= 1")
        self.high_water = float(high_water)
        self.low_water = float(low_water)
        self.level = 0

    @property
    def name(self) -> str:
        """The current level's name (``repro serve --status`` shows
        it)."""
        return DEGRADATION_LEVELS[self.level]

    @property
    def degraded(self) -> bool:
        """Whether the service is running above NORMAL."""
        return self.level > 0

    def update(self, pressure: float) -> int:
        """Feed one load sample; returns the (possibly new) level."""
        if pressure >= self.high_water:
            if self.level < len(DEGRADATION_LEVELS) - 1:
                self.level += 1
                ingest_stats().add(serve_degradations=1)
        elif pressure <= self.low_water and self.level > 0:
            self.level -= 1
        return self.level

    def force(self, level: int) -> int:
        """Jump straight to ``level`` (arena exhaustion and journal
        pressure escalate without waiting for queue samples)."""
        level = max(0, min(int(level), len(DEGRADATION_LEVELS) - 1))
        if level > self.level:
            ingest_stats().add(serve_degradations=1)
        self.level = level
        return self.level


class PeriodicJob:
    """A supervised maintenance timer (journal GC, archival sweeps).

    Runs ``fn`` every ``interval_s`` on a daemon thread.  A run that
    raises is contained: the exception is recorded (``last_error``,
    ``failures``) and the next run waits ``interval_s`` plus the retry
    policy's backoff for the current failure streak — the service
    never dies because maintenance hiccuped, and a persistently
    failing job settles at the capped cadence instead of spinning.
    """

    def __init__(self, name: str, interval_s: float,
                 fn: Callable[[], object],
                 retry: Optional[RetryPolicy] = None) -> None:
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        self.name = name
        self.interval_s = float(interval_s)
        self.fn = fn
        self.retry = retry or RetryPolicy()
        self.runs = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self._streak = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "PeriodicJob":
        """Arm the timer; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name=f"serve-{self.name}", daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s + (
                self.retry.backoff_s(self._streak - 1)
                if self._streak else 0.0)):
            self.tick()

    def tick(self) -> bool:
        """Run the job once, containing failure; ``True`` on success.
        (Exposed so tests and a draining daemon can run it inline.)"""
        try:
            self.fn()
        except Exception as exc:
            self.failures += 1
            self._streak += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            ingest_stats().add(serve_retries=1)
            return False
        self.runs += 1
        self._streak = 0
        self.last_error = None
        return True

    def stop(self) -> None:
        """Disarm and join the timer thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def stats(self) -> dict:
        """The job's counters for the status endpoint."""
        return {"name": self.name, "interval_s": self.interval_s,
                "runs": self.runs, "failures": self.failures,
                "last_error": self.last_error}
