"""The always-on analysis service: ``repro serve``.

This package wraps the batch-shaped ingest machinery in a supervised
long-running daemon.  The pieces:

* :mod:`repro.serve.supervisor` — the per-session state machine
  (ACCEPTING → DRAINING → FINALIZING → DONE, with QUARANTINED as the
  isolation state and re-ingest as its only exit);
* :mod:`repro.serve.policies` — deadlines, capped-exponential retry,
  the overload degradation ladder, supervised periodic jobs;
* :mod:`repro.serve.health` — the unix-socket ``/healthz``-style
  status endpoint;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, which composes
  them over the journal write-through and the shared
  :class:`~repro.ingest.streaming.FinalizeDispatcher` so a served
  session's result is bit-identical to the batch path's.

The CLI front-ends are ``repro serve --journal DIR ...`` (run the
daemon) and ``repro serve --status --journal DIR`` (query a running
one).
"""

from repro.serve.daemon import ServeDaemon
from repro.serve.health import HealthServer, STATUS_SOCKET_NAME, read_status
from repro.serve.policies import (
    DEGRADATION_LEVELS,
    DeadlinePolicy,
    DegradationLadder,
    NORMAL,
    PeriodicJob,
    RetryPolicy,
    SHED_NEW,
    STRICT_DURABILITY,
)
from repro.serve.supervisor import (
    ACCEPTING,
    DONE,
    DRAINING,
    FINALIZING,
    LEGAL_TRANSITIONS,
    QUARANTINED,
    SESSION_STATES,
    SessionRecord,
    SessionSupervisor,
)

__all__ = [
    "ServeDaemon",
    "HealthServer", "read_status", "STATUS_SOCKET_NAME",
    "DeadlinePolicy", "RetryPolicy", "DegradationLadder", "PeriodicJob",
    "DEGRADATION_LEVELS", "NORMAL", "SHED_NEW", "STRICT_DURABILITY",
    "SessionSupervisor", "SessionRecord", "SESSION_STATES",
    "LEGAL_TRANSITIONS", "ACCEPTING", "DRAINING", "FINALIZING", "DONE",
    "QUARANTINED",
]
