"""A simulated fleet of concurrent touch devices.

The paper's system is one device on one wrist; the production target
is a service ingesting many such devices at once (Kusche et al.'s
multichannel real-time bioimpedance hardware is exactly this fleet,
one channel per subject).  :class:`DeviceFleet` models N concurrent
devices, each a :class:`SimulatedDevice` with its own subject, arm
position, sampling rate, chunk cadence, start offset and link jitter.
Recordings come from the physiological synthesizer
(:func:`repro.synth.recording.synthesize_recording`), so every
session's ground truth is known; chunks from all devices interleave in
simulated arrival order, which is what the streaming executor and the
ingest bench consume.

Everything is deterministic given the fleet seed: device parameters,
link jitter and the synthesized signals all derive from seeded
generators, so a fleet run is exactly reproducible — the property the
streaming-vs-offline parity tests rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ingest.chunks import RecordingChunk, chunk_recording
from repro.io.records import Recording
from repro.synth.recording import SynthesisConfig, synthesize_recording
from repro.synth.subject import default_cohort

__all__ = ["SimulatedDevice", "FleetConfig", "DeviceFleet"]


@dataclass(frozen=True)
class SimulatedDevice:
    """One touch device of the fleet.

    ``session_id`` doubles as the device identity; a device produces
    exactly one session per fleet run (re-run the fleet for the next
    measurement round).
    """

    session_id: str
    subject_index: int          # index into the fleet's cohort
    position: int               # arm position 1-3
    fs: float
    duration_s: float
    chunk_s: float
    start_offset_s: float       # when the user initiates the touch
    jitter_s: float             # link-delay jitter std, seconds
    injection_frequency_hz: float = 50_000.0
    seed: int = 0


@dataclass(frozen=True)
class FleetConfig:
    """Shape of a simulated fleet.

    Device parameters are drawn deterministically from ``seed``:
    subjects round-robin through the cohort, positions cycle 1-3,
    start offsets spread uniformly over ``stagger_s`` and each link
    gets its own jitter scale.  ``fs_choices`` lets part of the fleet
    run at a different rate (the executor builds one pipeline per
    rate, as the batch path does).
    """

    n_devices: int = 8
    duration_s: float = 30.0
    chunk_s: float = 2.0
    fs_choices: tuple = (250.0,)
    stagger_s: float = 5.0
    jitter_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ConfigurationError("a fleet needs >= 1 device")
        if self.duration_s <= 0 or self.chunk_s <= 0:
            raise ConfigurationError(
                "duration_s and chunk_s must be positive")
        if not self.fs_choices or any(fs <= 0 for fs in self.fs_choices):
            raise ConfigurationError("fs_choices must be positive rates")
        if self.stagger_s < 0 or self.jitter_s < 0:
            raise ConfigurationError(
                "stagger_s and jitter_s must be non-negative")


class DeviceFleet:
    """N concurrent simulated devices, yielding interleaved chunks.

    Iterating a fleet produces every device's chunks merged by
    simulated arrival time (ties broken by device id then sequence,
    so the order is total and reproducible).  Note the producer-side
    memory shape: the arrival-order merge primes every device's
    stream at the first ``next()``, so all N recordings are
    synthesized (and memoized) up front — producer memory is
    O(n_devices x duration).  The downstream *queue* bounds how far
    the producer runs ahead of the consumers (chunk buffering), not
    the synthesis working set; a deployment ingesting real radios has
    no such set, the synthesizer here stands in for the outside
    world.
    """

    def __init__(self, config: Optional[FleetConfig] = None,
                 cohort=None) -> None:
        self.config = config or FleetConfig()
        self.cohort = list(cohort) if cohort is not None else default_cohort()
        if not self.cohort:
            raise ConfigurationError("fleet cohort must not be empty")
        self.devices = self._build_devices()
        self._recordings: dict = {}

    def _build_devices(self) -> tuple:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        devices = []
        for i in range(cfg.n_devices):
            devices.append(SimulatedDevice(
                session_id=f"device-{i:03d}",
                subject_index=i % len(self.cohort),
                position=1 + i % 3,
                fs=float(cfg.fs_choices[i % len(cfg.fs_choices)]),
                duration_s=cfg.duration_s,
                chunk_s=cfg.chunk_s,
                start_offset_s=float(rng.uniform(0.0, cfg.stagger_s)),
                jitter_s=cfg.jitter_s,
                seed=int(rng.integers(0, 2**31 - 1)),
            ))
        return tuple(devices)

    def synthesize(self, device: SimulatedDevice) -> Recording:
        """The full recording a device will stream (ground truth
        attached), rendered deterministically from the device seed.

        Memoized per device: synthesis is pure, so re-iterating a
        fleet (or comparing a streamed run against the offline batch,
        as the bench does) must not pay it twice.
        """
        cached = self._recordings.get(device.session_id)
        if cached is not None:
            return cached
        subject = self.cohort[device.subject_index]
        config = SynthesisConfig(
            duration_s=device.duration_s, fs=device.fs,
            injection_frequency_hz=device.injection_frequency_hz)
        recording = synthesize_recording(subject, "device",
                                         device.position, config)
        meta = dict(recording.meta)
        meta["session_id"] = device.session_id
        recording = Recording(recording.fs, recording.signals,
                              recording.annotations, meta)
        self._recordings[device.session_id] = recording
        return recording

    def _device_stream(self, order: int, device: SimulatedDevice):
        """One device's keyed chunk stream with monotonic arrivals.

        An ordered link delivers chunks in sequence no matter how the
        delays jitter, so each arrival stamp is clamped to be no
        earlier than its predecessor's — the stream is sorted by
        construction and merges without re-sorting.
        """
        recording = self.synthesize(device)
        jitter = np.random.default_rng(device.seed ^ 0x5EED)
        previous = 0.0
        for chunk in chunk_recording(recording, device.session_id,
                                     device.chunk_s,
                                     start_s=device.start_offset_s,
                                     jitter=jitter,
                                     jitter_s=device.jitter_s):
            arrival = max(previous, chunk.arrival_s)
            previous = arrival
            if arrival != chunk.arrival_s:
                chunk = replace(chunk, arrival_s=arrival)
            yield arrival, order, chunk.seq, chunk

    def __iter__(self) -> Iterator[RecordingChunk]:
        """All devices' chunks, merged by simulated arrival time
        (ties broken by device order then sequence, so the interleave
        is total and reproducible)."""
        streams = [self._device_stream(order, device)
                   for order, device in enumerate(self.devices)]
        for _, _, _, chunk in heapq.merge(*streams):
            yield chunk

    @property
    def total_recording_s(self) -> float:
        """Sum of all devices' recording durations (for throughput
        accounting: recordings/sec = n_devices / wall time)."""
        return sum(device.duration_s for device in self.devices)
