"""A simulated fleet of concurrent touch devices.

The paper's system is one device on one wrist; the production target
is a service ingesting many such devices at once (Kusche et al.'s
multichannel real-time bioimpedance hardware is exactly this fleet,
one channel per subject).  :class:`DeviceFleet` models N concurrent
devices, each a :class:`SimulatedDevice` with its own subject, arm
position, sampling rate, chunk cadence, start offset and link jitter.
Recordings come from the physiological synthesizer
(:func:`repro.synth.recording.synthesize_recording`), so every
session's ground truth is known; chunks from all devices interleave in
simulated arrival order, which is what the streaming executor and the
ingest bench consume.

Beyond the single pristine measurement, the fleet models *long-lived
load*: each device performs ``n_rounds`` measurement rounds (one
session per round, jittered gaps in between) under configurable
churn — with probability ``dropout`` a round's user lifts their thumbs
mid-measurement.  A dropped session either **rejoins** (the remaining
chunks arrive after a reconnect delay, so the session stays open for a
long stretch while other rounds stream past) or never completes (the
open session a journal-attached executor persists for later
recovery).  Churn only reorders and withholds chunks — it never
touches sample values — so a session's analysis result is well-defined
regardless of how its transport was disturbed, which is what the
crash-recovery bit-identity property rests on.

Everything is deterministic given the fleet seed: device parameters,
round schedules, churn draws, link jitter and the synthesized signals
all derive from seeded generators, so a fleet run is exactly
reproducible — the property the streaming-vs-offline parity tests rely
on.  The churn generator draws the same sequence whatever the
``dropout``/``rejoin`` *values*, so fleets differing only in those
knobs share identical session content and round timing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ingest.chunks import RecordingChunk, chunk_recording
from repro.io.records import Recording
from repro.synth.recording import SynthesisConfig, synthesize_recording
from repro.synth.subject import default_cohort

__all__ = ["SimulatedDevice", "FleetConfig", "SessionSchedule",
           "DeviceFleet"]


@dataclass(frozen=True)
class SimulatedDevice:
    """One touch device of the fleet.

    ``session_id`` is the device identity; a device produces one
    session per measurement round (round 0's session id equals the
    device id when the fleet runs a single round, ``<id>-r<j>``
    otherwise).
    """

    session_id: str
    subject_index: int          # index into the fleet's cohort
    position: int               # arm position 1-3
    fs: float
    duration_s: float
    chunk_s: float
    start_offset_s: float       # when the user initiates the touch
    jitter_s: float             # link-delay jitter std, seconds
    injection_frequency_hz: float = 50_000.0
    seed: int = 0


@dataclass(frozen=True)
class FleetConfig:
    """Shape of a simulated fleet.

    Device parameters are drawn deterministically from ``seed``:
    subjects round-robin through the cohort, positions cycle 1-3,
    start offsets spread uniformly over ``stagger_s`` and each link
    gets its own jitter scale.  ``fs_choices`` lets part of the fleet
    run at a different rate (the executor builds one pipeline per
    rate, as the batch path does).

    ``n_rounds`` turns one run into long-lived load: every device
    measures repeatedly, with a jittered gap of 0.5-1.5 x
    ``round_gap_s`` between its rounds.  ``dropout`` is the
    per-session probability the user aborts mid-measurement; a dropped
    session's remaining chunks arrive after a reconnect delay when
    ``rejoin`` is on, and never when it is off.
    """

    n_devices: int = 8
    duration_s: float = 30.0
    chunk_s: float = 2.0
    fs_choices: tuple = (250.0,)
    stagger_s: float = 5.0
    jitter_s: float = 0.05
    seed: int = 0
    n_rounds: int = 1
    round_gap_s: float = 5.0
    dropout: float = 0.0
    rejoin: bool = True

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ConfigurationError("a fleet needs >= 1 device")
        if self.duration_s <= 0 or self.chunk_s <= 0:
            raise ConfigurationError(
                "duration_s and chunk_s must be positive")
        if not self.fs_choices or any(fs <= 0 for fs in self.fs_choices):
            raise ConfigurationError("fs_choices must be positive rates")
        if self.stagger_s < 0 or self.jitter_s < 0:
            raise ConfigurationError(
                "stagger_s and jitter_s must be non-negative")
        if self.n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        if self.round_gap_s < 0:
            raise ConfigurationError("round_gap_s must be non-negative")
        if not 0.0 <= self.dropout <= 1.0:
            raise ConfigurationError("dropout must be a probability")


@dataclass(frozen=True)
class SessionSchedule:
    """One device's plan for one measurement round.

    ``drop_fraction`` is only meaningful when ``dropped``: the device
    emits roughly that fraction of the session's chunks, then goes
    silent — forever when the fleet's ``rejoin`` is off, else until
    ``rejoin_delay_s`` after the drop.
    """

    session_id: str
    device: SimulatedDevice
    round_index: int
    start_s: float              #: when this round begins streaming
    synthesis_seed: Optional[int]  #: ``None`` -> subject default rng
    dropped: bool = False
    drop_fraction: float = 0.0
    rejoin_delay_s: float = 0.0


class DeviceFleet:
    """N concurrent simulated devices, yielding interleaved chunks.

    Iterating a fleet produces every session's chunks merged by
    simulated arrival time (ties broken by device order, round, then
    sequence, so the order is total and reproducible).  Note the
    producer-side memory shape: the arrival-order merge primes every
    stream at the first ``next()``, so all sessions are synthesized
    (and memoized) up front — producer memory is
    O(n_devices x n_rounds x duration).  The downstream *queue* bounds
    how far the producer runs ahead of the consumers (chunk
    buffering), not the synthesis working set; a deployment ingesting
    real radios has no such set, the synthesizer here stands in for
    the outside world.
    """

    def __init__(self, config: Optional[FleetConfig] = None,
                 cohort=None) -> None:
        self.config = config or FleetConfig()
        self.cohort = list(cohort) if cohort is not None else default_cohort()
        if not self.cohort:
            raise ConfigurationError("fleet cohort must not be empty")
        self.devices = self._build_devices()
        self.schedules = self._build_schedules()
        self._recordings: dict = {}
        self._by_session = {s.session_id: s for s in self.schedules}

    def _build_devices(self) -> tuple:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        devices = []
        for i in range(cfg.n_devices):
            devices.append(SimulatedDevice(
                session_id=f"device-{i:03d}",
                subject_index=i % len(self.cohort),
                position=1 + i % 3,
                fs=float(cfg.fs_choices[i % len(cfg.fs_choices)]),
                duration_s=cfg.duration_s,
                chunk_s=cfg.chunk_s,
                start_offset_s=float(rng.uniform(0.0, cfg.stagger_s)),
                jitter_s=cfg.jitter_s,
                seed=int(rng.integers(0, 2**31 - 1)),
            ))
        return tuple(devices)

    def _build_schedules(self) -> tuple:
        """Every (device, round) session, deterministically.

        The churn generator is separate from the device-parameter one
        (same-seed devices stay identical whatever the round/churn
        settings), and the *same draws* happen whatever the
        ``dropout``/``rejoin`` values — so a churned fleet and its
        churn-free twin share session ids, content, and round starts.
        """
        cfg = self.config
        churn = np.random.default_rng((cfg.seed, 0xC0FFEE))
        schedules = []
        for device in self.devices:
            start = device.start_offset_s
            for round_index in range(cfg.n_rounds):
                u_gap, u_drop, u_frac, u_rejoin = churn.random(4)
                seed_draw = int(churn.integers(0, 2**31 - 1))
                if round_index > 0:
                    start += (device.duration_s
                              + cfg.round_gap_s * (0.5 + u_gap))
                session_id = (device.session_id if cfg.n_rounds == 1
                              else f"{device.session_id}-r{round_index}")
                schedules.append(SessionSchedule(
                    session_id=session_id,
                    device=device,
                    round_index=round_index,
                    start_s=start,
                    # Round 0 keeps the subject's default generator so
                    # a single-round fleet reproduces the pre-round-era
                    # streams bit-for-bit.
                    synthesis_seed=(None if round_index == 0
                                    else seed_draw),
                    dropped=bool(cfg.dropout > 0.0
                                 and u_drop < cfg.dropout),
                    drop_fraction=0.25 + 0.5 * u_frac,
                    rejoin_delay_s=(max(cfg.round_gap_s, 1.0)
                                    * (0.5 + u_rejoin)),
                ))
        return tuple(schedules)

    # -- sessions ----------------------------------------------------------

    @property
    def session_ids(self) -> tuple:
        """Every scheduled session id, device-major then round order."""
        return tuple(s.session_id for s in self.schedules)

    def session_recording(self, session_id: str) -> Recording:
        """The full recording one session will stream (ground truth
        attached), rendered deterministically from its schedule.

        Memoized per session: synthesis is pure, so re-iterating a
        fleet (or comparing a streamed run against the offline batch,
        as the bench does) must not pay it twice.
        """
        cached = self._recordings.get(session_id)
        if cached is not None:
            return cached
        schedule = self._by_session.get(session_id)
        if schedule is None:
            raise ConfigurationError(
                f"no session {session_id!r} in this fleet; scheduled: "
                f"{list(self.session_ids)}")
        device = schedule.device
        subject = self.cohort[device.subject_index]
        config = SynthesisConfig(
            duration_s=device.duration_s, fs=device.fs,
            injection_frequency_hz=device.injection_frequency_hz)
        rng = (None if schedule.synthesis_seed is None
               else np.random.default_rng(schedule.synthesis_seed))
        recording = synthesize_recording(subject, "device",
                                         device.position, config,
                                         rng=rng)
        meta = dict(recording.meta)
        meta["session_id"] = session_id
        meta["device_id"] = device.session_id
        meta["round"] = schedule.round_index
        recording = Recording(recording.fs, recording.signals,
                              recording.annotations, meta)
        self._recordings[session_id] = recording
        return recording

    def session_nbytes(self, session_id: str) -> int:
        """Aligned arena bytes one session's chunks will publish.

        The pre-sizing hint a :class:`~repro.ingest.chunks.ChunkArenaRing`
        asks sources for: with it a session's first block holds the
        whole session, so publishing never rolls mid-stream.  Costs a
        (memoized) synthesis, which streaming pays anyway.
        """
        from repro.core.shm import aligned_nbytes

        recording = self.session_recording(session_id)
        total = sum(aligned_nbytes(np.asarray(v).nbytes)
                    for v in recording.signals.values())
        total += sum(aligned_nbytes(np.asarray(v).nbytes)
                     for v in recording.annotations.values())
        return total

    def synthesize(self, device: SimulatedDevice) -> Recording:
        """The recording ``device`` streams in its first round (the
        whole-fleet view for a single-round fleet — the historical
        API; multi-round callers use :meth:`session_recording`)."""
        session_id = (device.session_id if self.config.n_rounds == 1
                      else f"{device.session_id}-r0")
        return self.session_recording(session_id)

    # -- the interleaved stream --------------------------------------------

    def _session_segments(self, order: int, schedule: SessionSchedule):
        """One session's chunk stream as sorted (key, chunk) segments.

        An ordered link delivers chunks in sequence no matter how the
        delays jitter, so each arrival stamp is clamped to be no
        earlier than its predecessor's — every segment is sorted by
        construction and merges without re-sorting.  Dropout splits
        the stream at the drop point: the head streams in place, the
        tail (when the fleet rejoins) arrives ``rejoin_delay_s``
        later — still in sequence order, possibly interleaving with
        the device's *next* rounds, which is exactly the long-open
        session shape the durable ingest layer exists for.
        """
        device = schedule.device
        recording = self.session_recording(schedule.session_id)
        jitter = np.random.default_rng(
            device.seed ^ 0x5EED ^ (schedule.round_index * 0x9E37))
        keyed = []
        previous = 0.0
        for chunk in chunk_recording(recording, schedule.session_id,
                                     device.chunk_s,
                                     start_s=schedule.start_s,
                                     jitter=jitter,
                                     jitter_s=device.jitter_s):
            arrival = max(previous, chunk.arrival_s)
            previous = arrival
            if arrival != chunk.arrival_s:
                chunk = replace(chunk, arrival_s=arrival)
            keyed.append(
                ((arrival, order, schedule.round_index, chunk.seq),
                 chunk))
        if not schedule.dropped or len(keyed) < 2:
            return [keyed]
        cut = max(1, min(len(keyed) - 1,
                         int(schedule.drop_fraction * len(keyed))))
        head = keyed[:cut]
        if not self.config.rejoin:
            return [head]
        delay = schedule.rejoin_delay_s
        tail = [((key[0] + delay, *key[1:]),
                 replace(chunk, arrival_s=key[0] + delay))
                for key, chunk in keyed[cut:]]
        return [head, tail]

    def __iter__(self) -> Iterator[RecordingChunk]:
        """All sessions' chunks, merged by simulated arrival time
        (ties broken by device order, round, then sequence, so the
        interleave is total and reproducible)."""
        segments = []
        for schedule in self.schedules:
            order = self.devices.index(schedule.device)
            segments.extend(self._session_segments(order, schedule))
        for _, chunk in heapq.merge(*segments, key=lambda kc: kc[0]):
            yield chunk

    @property
    def dropped_session_ids(self) -> tuple:
        """Sessions churn will actually interrupt (they complete late
        when the fleet rejoins, never within this stream otherwise).

        A dropout draw on a session too short to split — fewer than
        two chunks, where ``_session_segments`` streams it whole — is
        not a drop, so it is not reported as one.  Deciding that needs
        the session's chunk count, hence the (memoized) synthesis.
        """
        dropped = []
        for schedule in self.schedules:
            if not schedule.dropped:
                continue
            recording = self.session_recording(schedule.session_id)
            step = max(1, int(round(schedule.device.chunk_s
                                    * recording.fs)))
            n_chunks = (recording.n_samples + step - 1) // step
            if n_chunks >= 2:
                dropped.append(schedule.session_id)
        return tuple(dropped)

    @property
    def total_recording_s(self) -> float:
        """Sum of all scheduled sessions' durations (for throughput
        accounting: recordings/sec = n_sessions / wall time)."""
        return sum(s.device.duration_s for s in self.schedules)
