"""The chunk journal: durable, append-only ingest persistence.

A :class:`ChunkJournal` is a directory of numbered append-only segment
files (``segment-00000.log`` ...) holding CRC-framed
:class:`~repro.ingest.chunks.RecordingChunk` records (the codec lives
in :mod:`repro.io.journal_records`), plus one small JSON *manifest*
per completed session (written atomically when the session's trailer
is journaled).  The streaming executor writes every consumed chunk
through the journal before analysing it, so after any crash the disk
holds exactly the chunks the service had accepted — and a
:class:`~repro.ingest.recovery.RecoveryManager` can replay them.

Durability contract, pinned by the journal/fault tests:

* **Idempotent append** — re-appending an already-journaled
  ``(session, seq)`` is a no-op, which is what lets recovery replay a
  whole source through a journal-attached executor without duplicating
  records; appending a *gap* (seq beyond the next expected) raises,
  since a replay could then never reconstruct the session.
* **Torn tails heal** — reopening a journal whose last segment ends
  mid-record truncates the torn bytes (the classic WAL recovery step)
  and appends cleanly after the last good record.
* **Damage quarantines** — a record failing its CRC marks its session
  damaged; the journal refuses further appends for that session (new
  records could never be replayed past the hole) and the scan reports
  exactly which sessions are affected, while every other session stays
  fully usable.

Write path
----------
Records are encoded by the copy-free iovec codec by default
(``codec="iov"``: header bytes + raw array views, framed with a
chained CRC and written through one ``os.writev`` — bit-identical on
disk to the legacy ``codec="bytes"`` path, which is retained as the
bench reference).  ``durability`` picks when those bytes reach the
file:

* ``"strict"`` (default) writes — and, with ``fsync``, syncs — inside
  ``append``, preserving the historical chunk-on-disk-before-analysis
  ordering per record;
* ``"group"`` lands appends in a bounded in-memory buffer drained by
  a background writer thread, one flush (and one fsync) per drain
  window — the classic group commit: while one window syncs, the next
  batches.  Appends block when the buffer is full (backpressure), a
  session trailer barriers on :meth:`ChunkJournal.flush` *before* its
  manifest is written (so the manifest-after-records invariant and
  finalize's recovery bit-identity both survive any crash point), and
  what is on disk is always a prefix of append order — which is why
  the crash-point property tests hold in both modes.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError, JournalError
from repro.io.journal_records import (
    encode_chunk,
    encode_chunk_iov,
    frame_nbytes,
    frame_record,
    frame_record_iov,
    scan_segment,
)

__all__ = ["ChunkJournal", "JournalScan", "scan_journal",
           "repair_torn_tail", "write_manifest", "read_manifests",
           "DURABILITY_MODES", "JOURNAL_CODECS"]

#: ``"strict"`` writes per append; ``"group"`` batches appends into
#: background flush windows with one fsync each.
DURABILITY_MODES = ("strict", "group")

#: ``"iov"`` is the zero-copy writev codec; ``"bytes"`` the legacy
#: materializing codec (bit-identical output, kept as the reference).
JOURNAL_CODECS = ("iov", "bytes")


def _credit(**deltas) -> None:
    from repro.ingest.stats import ingest_stats
    ingest_stats().add(**deltas)


#: How long the group writer lingers (only when ``fsync`` is on) so
#: more appends can join the flush window before it pays the fsync.
#: A :meth:`ChunkJournal.flush` barrier bypasses the wait entirely, so
#: finalize never eats the window latency.
GROUP_WINDOW_S = 0.002

try:
    _IOV_MAX = os.sysconf("SC_IOV_MAX")
    if _IOV_MAX <= 0:
        _IOV_MAX = 1024
except (AttributeError, OSError, ValueError):
    _IOV_MAX = 1024


def _writev_all(fd: int, buffers) -> int:
    """Write an iovec fully (handling partial writes); bytes written.

    The common case is one complete ``writev`` straight off the
    caller's buffers; only a partial write pays for the byte-granular
    views needed to slice off the consumed prefix."""
    total = sum(len(b) if isinstance(b, (bytes, bytearray))
                else memoryview(b).nbytes for b in buffers)
    n = os.writev(fd, buffers)
    done = n
    if done >= total:
        return total
    views = [memoryview(b).cast("B") for b in buffers]
    while done < total:
        while n:                       # drop the consumed prefix
            head = views[0]
            if n >= head.nbytes:
                n -= head.nbytes
                views.pop(0)
            else:
                views[0] = head[n:]
                n = 0
        n = os.writev(fd, views)
        done += n
    return total

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".log"
_MANIFEST_PREFIX = "manifest-"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:05d}{_SEGMENT_SUFFIX}"


def _segment_index(path) -> int:
    """The numeric index a segment filename encodes.

    Resume must parse this rather than count files: garbage collection
    may delete segments from the middle of the sequence, and appending
    into a *positional* index would create a file that sorts before
    surviving higher-numbered segments, reordering the log.
    """
    return int(Path(path).name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def _segment_paths(directory: Path) -> list:
    """Existing segment files in index order."""
    return sorted(directory.glob(
        f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))


def _safe_session_id(session_id: str) -> str:
    """Filesystem-safe spelling of a session id (percent-escaped)."""
    return "".join(c if c.isalnum() or c in "-_." else f"%{ord(c):02x}"
                   for c in session_id)


def _manifest_name(session_id: str) -> str:
    """Filesystem-safe manifest filename (the id is also stored inside
    the JSON, so the filename never needs to be parsed back)."""
    return f"{_MANIFEST_PREFIX}{_safe_session_id(session_id)}.json"


def write_manifest(directory, session_id: str, n_chunks: int,
                   n_samples: int, fs: float) -> Path:
    """Atomically write one session's completion manifest (tmp file +
    rename, so a crash never leaves a half manifest)."""
    directory = Path(directory)
    path = directory / _manifest_name(session_id)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps({
        "session_id": session_id,
        "n_chunks": int(n_chunks),
        "n_samples": int(n_samples),
        "fs": float(fs),
        "completed": True,
    }, indent=2) + "\n")
    os.replace(tmp, path)
    return path


def read_manifests(directory) -> dict:
    """All readable session manifests, ``{session_id: manifest}``.

    A torn/unparsable manifest is skipped — the log is the source of
    truth; manifests only accelerate and cross-check it.
    """
    manifests = {}
    for path in sorted(Path(directory).glob(
            f"{_MANIFEST_PREFIX}*.json")):
        try:
            manifest = json.loads(path.read_text())
            manifests[str(manifest["session_id"])] = manifest
        except Exception:
            continue
    return manifests


@dataclass
class JournalScan:
    """Everything a journal directory holds, classified.

    ``complete``/``open`` map session ids to their chunk lists in log
    order; ``damaged`` maps a session id to the human-readable reason
    it was quarantined.  ``torn_tail`` is ``(segment_path, offset)``
    when the last segment ended mid-record (crash mid-append) — the
    torn bytes carry no completed ``write`` and are safe to truncate.
    ``unattributed_damage`` counts damaged records whose header did not
    survive (they could not be pinned to a session; any session with a
    sequence gap is quarantined instead).
    """

    directory: Path
    segments: tuple = ()
    n_records: int = 0
    complete: dict = field(default_factory=dict)
    open: dict = field(default_factory=dict)
    damaged: dict = field(default_factory=dict)
    manifests: dict = field(default_factory=dict)
    #: Manifests of sessions whose journal records were reclaimed by
    #: ``journal-gc`` (``collected: true`` in the manifest).  Their
    #: left-over records — a GC interrupted mid-way legitimately leaves
    #: some behind — are skipped as garbage, not counted as damage, and
    #: the journal refuses new appends under their ids just as it does
    #: for completed sessions.
    collected: dict = field(default_factory=dict)
    torn_tail: Optional[tuple] = None
    unattributed_damage: int = 0
    #: Records per segment file, in log order (damaged ones included —
    #: their frames occupy the file, so appends count them too).
    records_per_segment: tuple = ()
    #: Whether the *last* segment lost its framing (bad magic):
    #: appending after the unreadable bytes would hide the new records
    #: from every future scan, so a reopening journal must roll to a
    #: fresh segment instead.
    last_segment_lost_framing: bool = False

    @property
    def session_counts(self) -> dict:
        """Good journaled chunks per non-damaged session."""
        counts = {sid: len(chunks) for sid, chunks in self.open.items()}
        counts.update({sid: len(chunks)
                       for sid, chunks in self.complete.items()})
        return counts


def scan_journal(directory, decoder=None) -> JournalScan:
    """Classify every record of a journal directory.

    Never raises on damaged content (that is the point of recovery);
    raises :class:`~repro.errors.JournalError` only when ``directory``
    is not a journal at all.  ``decoder`` is threaded through to
    :func:`~repro.io.journal_records.scan_segment` (recovery passes an
    arena-rehydrating one).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise JournalError(f"no journal directory at {directory}")
    segments = _segment_paths(directory)
    scan = JournalScan(directory=directory,
                       segments=tuple(segments),
                       manifests=read_manifests(directory))
    scan.collected = {sid: manifest
                      for sid, manifest in scan.manifests.items()
                      if manifest.get("completed")
                      and manifest.get("collected")}
    sessions: dict = {}          # sid -> [chunks] in log order
    expected: dict = {}          # sid -> next seq
    completed: set = set()
    damaged: dict = {}

    def quarantine(sid: Optional[str], reason: str) -> None:
        if sid is None:
            scan.unattributed_damage += 1
            return
        damaged.setdefault(sid, reason)

    records_per_segment = []
    for position, path in enumerate(segments):
        segment = scan_segment(path, decoder=decoder)
        last = position == len(segments) - 1
        records_per_segment.append(len(segment.entries))
        if last:
            scan.last_segment_lost_framing = (
                segment.lost_framing_offset is not None)
        for entry in segment.entries:
            scan.n_records += 1
            if entry.session_id in scan.collected:
                # Reclaimed by journal-gc: the session's results no
                # longer depend on these records (a crash mid-GC can
                # leave some behind; a rerun finishes deleting them).
                continue
            if entry.error is not None:
                quarantine(entry.session_id,
                           f"{entry.error} in {path.name} at offset "
                           f"{entry.offset}")
                continue
            chunk = entry.chunk
            sid = chunk.session_id
            if sid in damaged:
                continue
            want = expected.get(sid, 0)
            if sid in completed or chunk.seq != want:
                quarantine(sid,
                           f"record sequence broken in {path.name}: "
                           f"got seq {chunk.seq}, expected {want}")
                continue
            sessions.setdefault(sid, []).append(chunk)
            expected[sid] = want + 1
            if chunk.is_last:
                completed.add(sid)
        if segment.torn_offset is not None:
            if last:
                scan.torn_tail = (path, segment.torn_offset)
            else:
                # A short read inside a *non*-final segment means the
                # file was externally truncated, not crash-torn; the
                # bytes lost cannot be attributed to a session.
                scan.unattributed_damage += 1
        if segment.lost_framing_offset is not None:
            scan.unattributed_damage += 1

    # A session can be quarantined after some of its records were
    # accepted (e.g. a damaged middle record then a seq gap) — those
    # already-collected chunks are untrustworthy too.
    for sid in damaged:
        sessions.pop(sid, None)
        completed.discard(sid)

    # A manifest asserting completion for a session the log cannot
    # complete is itself evidence of damage (the trailer was journaled
    # before the manifest was written — log and manifest can only
    # disagree if records were lost).
    for sid, manifest in scan.manifests.items():
        if (manifest.get("completed") and sid not in completed
                and sid not in damaged
                and sid not in scan.collected):
            damaged[sid] = ("manifest records a completed session the "
                            "log cannot reassemble")
            sessions.pop(sid, None)

    for sid, chunks in sessions.items():
        (scan.complete if sid in completed else scan.open)[sid] = chunks
    scan.damaged = damaged
    scan.records_per_segment = tuple(records_per_segment)
    return scan


def repair_torn_tail(scan: JournalScan) -> bool:
    """Truncate the torn bytes a crash mid-append left behind.

    The torn record never completed its ``write`` — no consumer can
    have observed it — so dropping it is the safe WAL-recovery step.
    Returns whether anything was truncated.
    """
    if scan.torn_tail is None:
        return False
    path, offset = scan.torn_tail
    with open(path, "r+b") as fh:
        fh.truncate(offset)
    return True


class ChunkJournal:
    """Append-only, CRC-framed chunk log with per-session manifests.

    Opening a directory that already holds a journal *continues* it:
    the scan rebuilds per-session positions, a torn tail left by a
    crash is truncated away, and appends resume in the last segment
    (rolling to a new one every ``segment_records`` records when set).

    Parameters
    ----------
    directory:
        Journal directory; created when missing.
    segment_records:
        Roll to a new segment file after this many records (``None``
        keeps a single segment).  Segmentation bounds how much data a
        lost-framing corruption can take down and is the knob the
        recovery property test sweeps.
    fsync:
        Force records to stable storage — per append in ``"strict"``
        durability, once per flush window in ``"group"``.  Off by
        default — the simulated workloads only need crash consistency
        with respect to the process, not the kernel.
    durability:
        ``"strict"`` (default) writes each record inside ``append``;
        ``"group"`` batches appends into a bounded buffer a
        background writer drains — see the module docstring.
    codec:
        ``"iov"`` (default) writes the copy-free writev iovec;
        ``"bytes"`` the legacy materializing codec.  Byte-identical on
        disk.
    max_pending_bytes:
        Group-commit buffer bound; appends block (backpressure) while
        the writer is this many frame bytes behind.
    scan_decoder:
        Optional record decoder for the reopen scan (recovery passes
        an arena-rehydrating one so resume replays stay zero-copy).
    """

    def __init__(self, directory, segment_records: Optional[int] = None,
                 fsync: bool = False, durability: str = "strict",
                 codec: str = "iov",
                 max_pending_bytes: int = 8 << 20,
                 scan_decoder=None) -> None:
        if segment_records is not None and segment_records < 1:
            raise ConfigurationError("segment_records must be >= 1")
        if durability not in DURABILITY_MODES:
            raise ConfigurationError(
                f"unknown durability {durability!r}; "
                f"choose from {DURABILITY_MODES}")
        if codec not in JOURNAL_CODECS:
            raise ConfigurationError(
                f"unknown journal codec {codec!r}; "
                f"choose from {JOURNAL_CODECS}")
        if max_pending_bytes < 1:
            raise ConfigurationError("max_pending_bytes must be >= 1")
        self.directory = Path(directory)
        self.segment_records = segment_records
        self.fsync = bool(fsync)
        self.durability = durability
        self.codec = codec
        self.max_pending_bytes = int(max_pending_bytes)
        self.directory.mkdir(parents=True, exist_ok=True)
        scan = scan_journal(self.directory, decoder=scan_decoder)
        #: The classification this reopen was based on (taken before
        #: the torn-tail repair; callers like ``resume`` reuse it
        #: instead of paying a second full-journal scan).
        self.last_scan = scan
        self._expected = dict(scan.session_counts)
        # Collected sessions count as completed: their records were
        # reclaimed, so an append under the same id could never be
        # replayed into the original session.
        self._completed = set(scan.complete) | set(scan.collected)
        self._damaged = dict(scan.damaged)
        self.recovered_torn_tail = repair_torn_tail(scan)
        #: Records actually written by *this* journal instance (the
        #: scan's n_records plus this is the directory's live total).
        self.appended_records = 0
        if not scan.segments:
            self._segment_index = 0
            self._segment_records_written = 0
        elif scan.last_segment_lost_framing:
            # Appending after unreadable bytes would hide the new
            # records from every future scan — roll to a fresh segment
            # and leave the damaged one to the scan's damage report.
            self._segment_index = _segment_index(scan.segments[-1]) + 1
            self._segment_records_written = 0
        else:
            self._segment_index = _segment_index(scan.segments[-1])
            self._segment_records_written = scan.records_per_segment[-1]
        # Unbuffered: writes (and writev against the raw fd) hit the
        # file directly, so fd-level and file-object writes never
        # interleave through a stale userspace buffer.
        self._fh = open(
            self.directory / _segment_name(self._segment_index), "ab",
            buffering=0)
        self._closed = False
        # Group-commit writer state (thread started lazily on the
        # first group-mode append; strict journals never pay for it).
        self._writer: Optional[threading.Thread] = None
        self._wlock = threading.Lock()
        self._wcond = threading.Condition(self._wlock)
        self._pending: list = []
        self._pending_bytes = 0
        self._accepted = 0          # group records accepted by append
        self._synced = 0            # group records written (+synced)
        self._stop = False
        self._flush_waiters = 0     # barriers waiting in flush()
        self._writer_error: Optional[BaseException] = None
        self._writer_busy = False   # a batch is being written unlocked
        self._atexit_registered = False

    # -- bookkeeping ------------------------------------------------------

    @property
    def segments(self) -> tuple:
        """Paths of every segment file, in log order."""
        return tuple(_segment_paths(self.directory))

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (appends raise afterwards)."""
        return self._closed

    @property
    def completed_sessions(self) -> tuple:
        """Ids of sessions whose trailer has been journaled."""
        return tuple(sorted(self._completed))

    @property
    def open_sessions(self) -> tuple:
        """Ids of journaled sessions still awaiting their trailer."""
        return tuple(sorted(set(self._expected)
                            - self._completed - set(self._damaged)))

    def next_seq(self, session_id: str) -> int:
        """The sequence number the journal expects next for a session."""
        return self._expected.get(session_id, 0)

    # -- the append path --------------------------------------------------

    def append(self, chunk) -> bool:
        """Journal one chunk; ``True`` when a record was written.

        Appends are idempotent per ``(session, seq)``: a chunk the
        journal already holds (a recovery replay, a device re-sending
        after a reconnect) returns ``False`` without touching the log.
        A sequence *gap* raises — it could never be replayed — as does
        appending to a damaged (quarantined) session or a closed
        journal.
        """
        if self._closed:
            raise JournalError("journal is closed")
        sid = chunk.session_id
        if sid in self._damaged:
            raise JournalError(
                f"session {sid!r} is quarantined as damaged: "
                f"{self._damaged[sid]}")
        want = self._expected.get(sid, 0)
        if sid in self._completed or chunk.seq < want:
            return False                 # idempotent replay
        if chunk.seq > want:
            raise JournalError(
                f"session {sid!r}: appending seq {chunk.seq} would "
                f"leave a gap (journal expects {want})")
        if self.codec == "bytes":
            # Legacy reference codec: payload and frame materialized.
            record = frame_record(encode_chunk(chunk))
            length = len(record)
        else:
            # Copy-free iovec: header bytes + raw views over the
            # chunk's arrays; the CRC is chained at frame time.
            record = encode_chunk_iov(chunk)
            length = frame_nbytes(record)
        if self.durability == "strict":
            self._write_record(record)
            if self.fsync:
                os.fsync(self._fh.fileno())
                _credit(strict_fsyncs=1)
        else:
            self._enqueue("record", record, length)
        self.appended_records += 1
        self._expected[sid] = want + 1
        if chunk.is_last:
            self._completed.add(sid)
            manifest = dict(
                n_chunks=self._expected[sid],
                n_samples=chunk.start_sample + chunk.n_samples,
                fs=chunk.fs)
            # The manifest-after-records invariant: the trailer (and
            # with it every record of the session) must be on disk
            # before the completion manifest exists.  Strict mode just
            # wrote (and synced) the trailer; group mode enqueues the
            # manifest *behind* the trailer record, so the single
            # writer preserves the ordering at every crash point
            # without the producer serializing a drain per trailer —
            # ``flush``/``close`` still barrier on it.
            if self.durability == "strict":
                write_manifest(self.directory, sid, **manifest)
            else:
                self._enqueue("manifest", (sid, manifest), 0)
        return True

    # -- the write side (strict: append's thread; group: the writer) ------

    def _write_record(self, record) -> None:
        if (self.segment_records is not None
                and self._segment_records_written >= self.segment_records):
            self._roll_segment()
        if isinstance(record, (bytes, bytearray)):
            self._fh.write(record)
            written = len(record)
        else:
            written = _writev_all(self._fh.fileno(),
                                  frame_record_iov(record))
        self._segment_records_written += 1
        _credit(journal_records=1, journal_bytes_written=written)

    def _enqueue(self, kind: str, item, length: int) -> None:
        with self._wlock:
            self._raise_writer_error()
            if self._writer is None:
                self._writer = threading.Thread(
                    target=self._writer_loop, name="journal-writer",
                    daemon=True)
                self._writer.start()
                if not self._atexit_registered:
                    # A daemon dying via SIGTERM → SystemExit never
                    # reaches close(); the interpreter's atexit pass
                    # runs while this barrier can still drain the 2 ms
                    # group-commit window — before finalization freezes
                    # the (daemonic) writer thread mid-flight.
                    atexit.register(self._atexit_barrier)
                    self._atexit_registered = True
            while self._pending_bytes >= self.max_pending_bytes:
                self._wcond.wait(timeout=0.05)
                self._raise_writer_error()
            self._pending.append((kind, item))
            self._pending_bytes += length
            self._accepted += 1
            self._wcond.notify_all()

    def _writer_loop(self) -> None:
        while True:
            with self._wlock:
                while not self._pending and not self._stop:
                    self._wcond.wait()
                if not self._pending and self._stop:
                    return
                self._accumulate_window()
                # Take everything accumulated — the flush window.
                # While this batch writes and syncs, the next one
                # batches behind the lock: fsync latency is amortised
                # over however many appends it overlapped.
                batch = self._pending
                self._pending = []
                self._pending_bytes = 0
                self._writer_busy = True
            try:
                records = [item for kind, item in batch
                           if kind == "record"]
                self._write_batch(records)
                if records:
                    if self.fsync:
                        os.fsync(self._fh.fileno())
                        _credit(group_fsyncs=1)
                    _credit(group_flushes=1)
                # Manifests strictly after their records hit disk
                # (and after the window's fsync): the ordering half
                # of the finalize invariant.
                for kind, item in batch:
                    if kind == "manifest":
                        sid, manifest = item
                        write_manifest(self.directory, sid, **manifest)
            except BaseException as exc:
                with self._wlock:
                    self._writer_error = exc
                    self._stop = True
                    self._writer_busy = False
                    self._wcond.notify_all()
                return
            with self._wlock:
                self._synced += len(batch)
                self._writer_busy = False
                self._wcond.notify_all()

    def _accumulate_window(self) -> None:
        """Linger briefly (lock held, inside the condition wait) so
        more appends join the flush window — one writev (and, with
        ``fsync``, one fsync) then covers them all.  Bypassed the
        moment anyone barriers in ``flush``, the journal is stopping,
        or the buffer is already half full: latency is only ever
        traded for fewer syscalls, never added to a finalize or close
        path."""
        deadline = time.monotonic() + GROUP_WINDOW_S
        while (not self._stop and not self._flush_waiters
               and self._pending_bytes < self.max_pending_bytes // 2):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._wcond.wait(timeout=remaining)

    def _write_batch(self, batch) -> None:
        """Write one flush window through one ``os.writev`` per
        contiguous run — runs break only at segment-roll boundaries
        and at the platform ``IOV_MAX``."""
        iov: list = []
        staged = 0

        def drain() -> None:
            nonlocal iov, staged
            if not iov:
                return
            written = _writev_all(self._fh.fileno(), iov)
            self._segment_records_written += staged
            _credit(journal_records=staged, journal_bytes_written=written)
            iov = []
            staged = 0

        for record in batch:
            if (self.segment_records is not None
                    and self._segment_records_written + staged
                    >= self.segment_records):
                drain()
                self._roll_segment()
            parts = ([record] if isinstance(record, (bytes, bytearray))
                     else frame_record_iov(record))
            if iov and len(iov) + len(parts) > _IOV_MAX:
                drain()
            iov.extend(parts)
            staged += 1
        drain()

    def _raise_writer_error(self) -> None:
        if self._writer_error is not None:
            raise JournalError(
                f"journal writer failed: {self._writer_error!r}"
            ) from self._writer_error

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Barrier: every accepted append is on disk (and fsynced when
        ``fsync`` is on) when this returns.  Cheap no-op in strict
        mode (appends already write through) and on an idle group
        journal.

        Returns whether the barrier was reached.  Without ``timeout``
        it always is (or a writer failure raises); with one, ``False``
        means the writer could not catch up in time — the bounded wait
        the atexit barrier uses on a dying interpreter, where the
        writer thread may already be frozen.
        """
        if self._writer is None:
            return True
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._wlock:
            target = self._accepted
            self._flush_waiters += 1
            self._wcond.notify_all()   # cut a lingering window short
            try:
                while self._synced < target:
                    self._raise_writer_error()
                    if (deadline is not None
                            and time.monotonic() >= deadline):
                        return False
                    self._wcond.wait(timeout=0.05)
                self._raise_writer_error()
            finally:
                self._flush_waiters -= 1
        return True

    def set_durability(self, durability: str) -> str:
        """Switch durability mode at runtime; returns the previous mode.

        The serve daemon's degradation ladder uses this lever: under
        overload it degrades ``"group"`` → ``"strict"`` so the bounded
        write buffer stops absorbing memory and every append pays its
        own write (backpressure lands directly on the producer), then
        restores ``"group"`` when pressure clears.  Switching *to*
        strict barriers on :meth:`flush` first, so records never reach
        the file out of append order — the scan's per-session sequence
        check relies on the on-disk order being a prefix of append
        order.
        """
        if durability not in DURABILITY_MODES:
            raise ConfigurationError(
                f"unknown durability {durability!r}; "
                f"choose from {DURABILITY_MODES}")
        previous = self.durability
        if durability == previous:
            return previous
        if durability == "strict":
            self.flush()
        self.durability = durability
        return previous

    def _atexit_barrier(self) -> None:
        """Best-effort drain of the group window on interpreter exit.

        A graceful shutdown path (``close``) never reaches this — it
        unregisters the hook.  On an abrupt ``SystemExit`` (a SIGTERM
        handler, an unhandled exception in a daemon) the writer thread
        is daemonic, so the pending window's appends would silently die
        with it.  The barrier first gives the still-live writer a
        bounded chance to finish, then writes any remaining pending
        batch inline from the exiting thread — unless the writer is
        frozen mid-batch, where writing from a second thread could
        interleave into its half-written frame (the torn bytes are
        then the ordinary torn-tail crash class a rescan heals).
        """
        if self._closed:
            return
        try:
            if self.flush(timeout=1.0):
                return
            with self._wlock:
                if self._writer_busy:
                    return           # mid-frame: appending would tear
                batch, self._pending = self._pending, []
                self._pending_bytes = 0
                self._stop = True
            records = [item for kind, item in batch if kind == "record"]
            self._write_batch(records)
            if records and self.fsync:
                os.fsync(self._fh.fileno())
                _credit(group_fsyncs=1)
            if records:
                _credit(group_flushes=1)
            for kind, item in batch:
                if kind == "manifest":
                    sid, manifest = item
                    write_manifest(self.directory, sid, **manifest)
        except Exception:
            # The interpreter is dying; the journal's crash contract
            # (any on-disk prefix of append order recovers) covers
            # whatever this barrier could not finish.
            pass

    def _roll_segment(self) -> None:
        self._fh.close()
        self._segment_index += 1
        self._segment_records_written = 0
        self._fh = open(
            self.directory / _segment_name(self._segment_index), "ab",
            buffering=0)

    def close(self) -> None:
        """Drain the write buffer and close the segment (idempotent).

        A group journal barriers on its writer first — close returns
        only once every accepted append is on disk — and re-raises a
        writer failure rather than losing it silently.
        """
        if self._closed:
            return
        self._closed = True
        if self._atexit_registered:
            atexit.unregister(self._atexit_barrier)
            self._atexit_registered = False
        try:
            if self._writer is not None:
                with self._wlock:
                    self._stop = True
                    self._wcond.notify_all()
                self._writer.join()
        finally:
            self._fh.close()
        if self._writer_error is not None:
            self._raise_writer_error()

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
