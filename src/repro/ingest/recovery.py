"""Crash recovery: replay a chunk journal back into the stage graph.

A service that journals every consumed chunk can die at any instant
and lose nothing it had accepted.  :class:`RecoveryManager` is the
restart path: it scans the journal directory
(:func:`~repro.ingest.journal.scan_journal` classifies every record —
complete sessions, open sessions, damaged sessions, torn tail),
then

* :meth:`recover` replays the journaled chunks through a fresh
  :class:`~repro.ingest.streaming.StreamingExecutor` — the *same* code
  path live ingest runs — finalizing every session whose trailer was
  journaled.  Because chunk transport is lossless and the stage graph
  is pure, the per-session results are bit-identical to the run the
  crash interrupted (the recovery property test asserts this for
  arbitrary crash points and journal segmentations);
* :meth:`resume` additionally re-attaches a chunk source (a device
  fleet whose devices reconnect): journaled chunks replay first,
  already-journaled sequence numbers from the source are skipped, and
  genuinely new chunks are journaled and assembled — so sessions the
  crash (or a dropout) left open complete exactly as if nothing had
  happened.

Damaged sessions are never silently repaired: they are quarantined by
the scan, excluded from replay, and reported by id in the
:class:`RecoveryResult` — the caller decides whether to re-measure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.cache import FilterDesignCache
from repro.core.config import PipelineConfig
from repro.errors import JournalError
from repro.ingest.journal import (
    ChunkJournal,
    JournalScan,
    _manifest_name,
    _safe_session_id,
    repair_torn_tail,
    scan_journal,
    write_manifest,
)
from repro.ingest.streaming import StreamingExecutor
from repro.io.journal_records import (
    decode_chunk,
    decode_chunk_into,
    scan_segment,
)

__all__ = ["RecoveryManager", "RecoveryResult", "ReingestReport"]

#: Sidecar directory quarantined records are moved into; never read by
#: a journal scan (scans only glob the directory's top level).
QUARANTINE_DIR = ".quarantine"

_REINGEST_TMP_SUFFIX = ".reingest"


@dataclass
class ReingestReport:
    """What :meth:`RecoveryManager.reingest` moved aside.

    ``sidecar`` is the ``.quarantine/`` file holding the displaced
    frames verbatim (scannable with
    :func:`~repro.io.journal_records.scan_segment` for forensics), or
    ``None`` when the quarantine held no attributable record — e.g. a
    manifest/log mismatch where only the manifest had to be reset.
    """

    session_id: str
    records_moved: int = 0
    sidecar: Optional[Path] = None
    segments_rewritten: tuple = ()
    manifest_reset: bool = False


@dataclass
class RecoveryResult:
    """Outcome of one recovery (or resume) pass.

    ``results`` holds a
    :class:`~repro.ingest.streaming.SessionResult` per session that
    could be finalized; ``open_sessions`` the ids still awaiting their
    trailer after the pass; ``damaged`` the quarantined sessions with
    the scan's reason for each.
    """

    results: dict
    open_sessions: tuple = ()
    damaged: dict = field(default_factory=dict)
    n_records: int = 0
    torn_tail_recovered: bool = False
    unattributed_damage: int = 0


class RecoveryManager:
    """Re-open a chunk journal and pick its sessions back up.

    Parameters mirror the streaming executor's: ``config`` is the
    stage configuration sessions were (and will be) analysed under —
    recovery must run the identical configuration to reproduce the
    interrupted run's bits — and ``cache`` the filter-design cache for
    thread-backend finalization.
    """

    def __init__(self, directory,
                 config: Optional[PipelineConfig] = None,
                 cache: Optional[FilterDesignCache] = None) -> None:
        self.directory = Path(directory)
        self.config = config
        self.cache = cache

    def scan(self) -> JournalScan:
        """Classify the journal without replaying anything."""
        return scan_journal(self.directory)

    # -- internals --------------------------------------------------------

    def _executor(self, n_workers: int, finalize_backend: str,
                  preview: bool, journal: Optional[ChunkJournal],
                  max_chunks: Optional[int]) -> StreamingExecutor:
        # Replay chunks already live in arena slabs when the scan
        # rehydrated them (see _rehydration) — publishing them into a
        # second ring would be a gratuitous copy, so the replay
        # executor ships the view-backed chunk objects directly.
        return StreamingExecutor(
            config=self.config, n_workers=n_workers,
            finalize_backend=finalize_backend, max_chunks=max_chunks,
            preview=preview, cache=self.cache, journal=journal,
            allow_open=True, ingest_backend="reference")

    def _rehydration(self):
        """``(ring, decoder)`` for the replay scan.

        Under the ``"arena"`` ingest backend the journal's records are
        decoded straight into a
        :class:`~repro.ingest.chunks.ChunkArenaRing` (one write into a
        shared slab per array, no per-array copies); an OSError from
        shared memory degrades that record to the copying decoder.
        ``(None, None)`` under the reference backend — the historical
        copying replay.
        """
        from repro.ingest.chunks import ChunkArenaRing, ingest_backend

        if ingest_backend() != "arena":
            return None, None
        ring = ChunkArenaRing()

        def decoder(payload):
            try:
                return decode_chunk_into(payload, ring)
            except OSError:          # /dev/shm exhausted: copy instead
                return decode_chunk(payload)

        return ring, decoder

    @staticmethod
    def _replay(scan: JournalScan):
        """Every good journaled chunk, session-contiguous.

        The assembler only requires per-session sequence order (live
        ingest interleaves sessions arbitrarily), so replay yields each
        session's chunks in log order, complete sessions first.
        """
        for chunks in scan.complete.values():
            yield from chunks
        for chunks in scan.open.values():
            yield from chunks

    def _backfill_manifests(self, scan: JournalScan) -> None:
        """Write manifests a crash raced past (trailer journaled, but
        the process died before the manifest rename)."""
        for sid, chunks in scan.complete.items():
            if sid not in scan.manifests:
                trailer = chunks[-1]
                write_manifest(
                    self.directory, sid, n_chunks=len(chunks),
                    n_samples=trailer.start_sample + trailer.n_samples,
                    fs=trailer.fs)

    # -- quarantine re-ingest ---------------------------------------------

    def reingest(self, session_id: str) -> ReingestReport:
        """Clear a quarantined session so it can be measured again.

        Every frame attributable to the session — damaged and intact
        alike; a quarantined session is untrustworthy as a whole — is
        byte-copied into a ``.quarantine/`` sidecar file, the frames
        are removed from their segments (live sessions' frames are
        byte-copied through unchanged), and the session's manifest is
        deleted.  Afterwards the journal accepts the session again
        from seq 0 through the ordinary write-through path.

        Crash-safe by ordering: the sidecar is written and fsynced
        before any segment is rewritten, segments are rewritten in log
        order (an interruption leaves the session without its earliest
        records, so it *stays* quarantined until a rerun finishes),
        and the manifest is deleted last (a manifest surviving its
        records keeps the session quarantined too).  Unreadable bytes
        after a lost-framing point are preserved verbatim — they may
        belong to other sessions and are not this session's to move.

        Raises :class:`~repro.errors.JournalError` when the session is
        not quarantined.
        """
        scan = self.scan()
        if session_id not in scan.damaged:
            raise JournalError(
                f"session {session_id!r} is not quarantined "
                f"(nothing to re-ingest)")
        for stale in sorted(self.directory.glob(
                f"segment-*.log{_REINGEST_TMP_SUFFIX}")):
            stale.unlink()

        affected = []                    # (path, segment_scan, data)
        for path in scan.segments:
            segment = scan_segment(path)
            if any(entry.session_id == session_id
                   for entry in segment.entries):
                affected.append((path, segment, path.read_bytes()))

        sidecar = None
        moved = 0
        if affected:
            sidecar_dir = self.directory / QUARANTINE_DIR
            sidecar_dir.mkdir(exist_ok=True)
            safe = _safe_session_id(session_id)
            index = 0
            while (sidecar_dir / f"{safe}-{index:03d}.log").exists():
                index += 1
            sidecar = sidecar_dir / f"{safe}-{index:03d}.log"
            with open(sidecar, "wb") as out:
                for _, segment, data in affected:
                    for entry in segment.entries:
                        if entry.session_id == session_id:
                            out.write(data[entry.offset:
                                           entry.offset + entry.length])
                            moved += 1
                out.flush()
                os.fsync(out.fileno())

        rewritten = []
        for path, segment, data in affected:
            tmp = Path(str(path) + _REINGEST_TMP_SUFFIX)
            with open(tmp, "wb") as fh:
                for entry in segment.entries:
                    if entry.session_id != session_id:
                        fh.write(data[entry.offset:
                                      entry.offset + entry.length])
                if segment.lost_framing_offset is not None:
                    fh.write(data[segment.lost_framing_offset:])
                if segment.torn_offset is not None:
                    fh.write(data[segment.torn_offset:])
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            rewritten.append(path.name)

        manifest_path = self.directory / _manifest_name(session_id)
        manifest_reset = manifest_path.exists()
        if manifest_reset:
            manifest_path.unlink()
        return ReingestReport(
            session_id=session_id, records_moved=moved, sidecar=sidecar,
            segments_rewritten=tuple(rewritten),
            manifest_reset=manifest_reset)

    # -- the two entry points ---------------------------------------------

    def recover(self, n_workers: int = 1,
                finalize_backend: str = "thread",
                preview: bool = False,
                max_chunks: Optional[int] = 64) -> RecoveryResult:
        """Finalize every session the journal holds complete.

        Open sessions are reported, not dropped — they stay journaled
        for a later :meth:`resume`.  Missing manifests of complete
        sessions are backfilled, and a torn tail left by a crash
        mid-append is truncated away (the same healing a reopening
        journal performs).
        """
        ring, decoder = self._rehydration()
        try:
            scan = scan_journal(self.directory, decoder=decoder)
            torn_recovered = repair_torn_tail(scan)
            executor = self._executor(n_workers, finalize_backend,
                                      preview, journal=None,
                                      max_chunks=max_chunks)
            results = executor.run(self._replay(scan))
            self._backfill_manifests(scan)
        finally:
            if ring is not None:
                ring.release()
        return RecoveryResult(
            results=results,
            open_sessions=executor.last_open_sessions,
            damaged=dict(scan.damaged),
            n_records=scan.n_records,
            torn_tail_recovered=torn_recovered,
            unattributed_damage=scan.unattributed_damage,
        )

    def resume(self, source, n_workers: int = 1,
               finalize_backend: str = "thread",
               preview: bool = False,
               max_chunks: Optional[int] = 64,
               segment_records: Optional[int] = None) -> RecoveryResult:
        """Replay the journal, then continue ingesting ``source``.

        ``source`` is any :class:`~repro.ingest.chunks.SessionSource`;
        chunks it re-sends that the journal already holds are skipped
        (and the journal's own append is idempotent besides), chunks of
        quarantined sessions are refused, and everything genuinely new
        is journaled before analysis — exactly the live write-through
        path.  The returned results therefore cover *all* finalized
        sessions: those completed before the crash and those completed
        by the resumed stream.
        """
        # The reopening journal scans (and heals) the directory once;
        # its classification is reused for the replay and the result's
        # bookkeeping instead of paying further full-journal scans.
        # Under the arena backend that one scan also rehydrates every
        # replayed record straight into shared slabs.
        ring, decoder = self._rehydration()
        journal = ChunkJournal(self.directory,
                               segment_records=segment_records,
                               scan_decoder=decoder)
        scan = journal.last_scan
        counts = scan.session_counts
        completed = set(scan.complete)
        damaged = set(scan.damaged)

        def stream():
            yield from self._replay(scan)
            for chunk in source:
                sid = chunk.session_id
                if sid in damaged or sid in completed:
                    continue
                if chunk.seq < counts.get(sid, 0):
                    continue
                yield chunk

        try:
            executor = self._executor(n_workers, finalize_backend,
                                      preview, journal=journal,
                                      max_chunks=max_chunks)
            results = executor.run(stream())
        finally:
            journal.close()
            if ring is not None:
                ring.release()
        # Sessions complete on disk before the crash replay as no-op
        # appends (no trailer write, so no manifest): backfill from
        # the scan.  Newly completed sessions wrote theirs live.
        self._backfill_manifests(scan)
        return RecoveryResult(
            results=results,
            open_sessions=executor.last_open_sessions,
            damaged=dict(scan.damaged),
            n_records=scan.n_records + journal.appended_records,
            torn_tail_recovered=journal.recovered_torn_tail,
            unattributed_damage=scan.unattributed_damage,
        )
