"""Chunked recording transport: the unit of streaming ingest.

A :class:`RecordingChunk` is a contiguous slice of one session's
channels as a device would radio it out: session id, sequence number,
sample offset, the sample payload, and — on the final chunk — the
session's annotations and metadata (the trailer a device transmits
once the measurement ends).  Chunking then reassembling is exact:
slicing and concatenating float arrays never touches a sample, so a
:class:`SessionAssembler` reproduces the original
:class:`~repro.io.records.Recording` bit-identically, which is what
lets the streaming executor pin its results against the offline batch
path.

:class:`SessionSource` is the protocol every chunk producer satisfies
(iterate -> chunks in arrival order); :class:`RecordingSource` adapts
one materialized recording, and :class:`~repro.ingest.fleet.DeviceFleet`
interleaves many simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.io.records import Recording

__all__ = ["RecordingChunk", "SessionSource", "RecordingSource",
           "SessionAssembler", "chunk_recording"]


@dataclass(frozen=True)
class RecordingChunk:
    """One contiguous slice of a session's sampled channels.

    Parameters
    ----------
    session_id:
        Identifies the session the chunk belongs to; chunks of
        different sessions interleave freely on the wire.
    seq:
        0-based chunk index within the session; consumers enforce
        contiguity.
    fs:
        Sampling rate shared by every channel of the session.
    signals:
        Mapping of channel name to the 1-D slice payload.
    start_sample:
        Offset of the chunk's first sample in the full session.
    is_last:
        Marks the session trailer; only the trailer carries
        ``annotations``/``meta`` (ground truth and scalar metadata are
        transmitted once, after the measurement).
    arrival_s:
        Simulated arrival timestamp (seconds since ingest start) —
        the fleet uses it to interleave devices; it never influences
        sample values.
    annotations / meta:
        The session's annotation arrays and scalar metadata; empty on
        every chunk except the trailer.
    """

    session_id: str
    seq: int
    fs: float
    signals: dict
    start_sample: int
    is_last: bool = False
    arrival_s: float = 0.0
    annotations: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seq < 0 or self.start_sample < 0:
            raise ConfigurationError(
                "seq and start_sample must be non-negative")
        if self.fs <= 0:
            raise ConfigurationError("fs must be positive")
        if not self.signals:
            raise SignalError("a chunk needs at least one channel")
        lengths = {np.asarray(v).size for v in self.signals.values()}
        if len(lengths) != 1 or 0 in lengths:
            raise SignalError(
                f"chunk channels must share one non-zero length, got "
                f"{sorted(lengths)}")

    @property
    def n_samples(self) -> int:
        """Samples per channel in this chunk."""
        return next(iter(self.signals.values())).size

    @property
    def nbytes(self) -> int:
        """Approximate payload size (sample data only) — the quantity
        the work queue's byte-based backpressure bounds."""
        return int(sum(np.asarray(v).nbytes
                       for v in self.signals.values()))


@runtime_checkable
class SessionSource(Protocol):
    """Anything that yields :class:`RecordingChunk` in arrival order.

    Sources may interleave chunks of many concurrent sessions; within
    one session, ``seq`` must be contiguous from 0 and exactly one
    chunk must carry ``is_last``.
    """

    def __iter__(self) -> Iterator[RecordingChunk]:
        """Chunks in (simulated) arrival order."""
        ...


def chunk_recording(recording: Recording, session_id: str,
                    chunk_s: float = 2.0,
                    start_s: float = 0.0,
                    jitter: Optional[np.random.Generator] = None,
                    jitter_s: float = 0.0):
    """Slice one recording into transport chunks (a generator).

    The last chunk is the trailer: it carries the recording's
    annotations and metadata.  ``arrival_s`` is ``start_s`` plus the
    chunk's end time (a chunk cannot arrive before its samples exist)
    plus optional non-negative jitter — radio/queueing delay in the
    simulated link.
    """
    if chunk_s <= 0:
        raise ConfigurationError("chunk_s must be positive")
    n = recording.n_samples
    step = max(1, int(round(chunk_s * recording.fs)))
    n_chunks = (n + step - 1) // step
    for k in range(n_chunks):
        i0, i1 = k * step, min((k + 1) * step, n)
        last = i1 == n
        delay = 0.0
        if jitter is not None and jitter_s > 0.0:
            delay = float(abs(jitter.normal(0.0, jitter_s)))
        yield RecordingChunk(
            session_id=session_id,
            seq=k,
            fs=recording.fs,
            signals={name: data[i0:i1]
                     for name, data in recording.signals.items()},
            start_sample=i0,
            is_last=last,
            arrival_s=start_s + i1 / recording.fs + delay,
            annotations=dict(recording.annotations) if last else {},
            meta=dict(recording.meta) if last else {},
        )


class RecordingSource:
    """A single-session :class:`SessionSource` over one materialized
    recording — the adapter that lets offline data replay through the
    streaming path."""

    def __init__(self, recording: Recording, session_id: str = "session",
                 chunk_s: float = 2.0) -> None:
        self.recording = recording
        self.session_id = session_id
        self.chunk_s = float(chunk_s)

    def __iter__(self) -> Iterator[RecordingChunk]:
        """The recording's chunks, in order."""
        return chunk_recording(self.recording, self.session_id,
                               self.chunk_s)


class SessionAssembler:
    """Reassembles interleaved chunk streams into whole recordings.

    ``add`` returns the completed :class:`Recording` when a session's
    trailer arrives (and forgets the session), ``None`` otherwise.
    Out-of-order or duplicated sequence numbers fail loudly — the
    simulated link is ordered per session, so a gap is a programming
    error, not noise.
    """

    def __init__(self) -> None:
        #: session_id -> [parts, next_start_sample] (the running
        #: sample count makes contiguity checks O(1) per chunk).
        self._sessions: dict = {}

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def open_sessions(self) -> tuple:
        """Ids of sessions with chunks pending assembly."""
        return tuple(sorted(self._sessions))

    def add(self, chunk: RecordingChunk):
        """Fold one chunk in; the assembled recording on the trailer."""
        state = self._sessions.get(chunk.session_id)
        if state is None:
            state = self._sessions[chunk.session_id] = [[], 0]
        parts, expected_start = state
        if chunk.seq != len(parts):
            raise SignalError(
                f"session {chunk.session_id!r}: expected chunk "
                f"{len(parts)}, got {chunk.seq}")
        if chunk.start_sample != expected_start:
            raise SignalError(
                f"session {chunk.session_id!r}: chunk {chunk.seq} "
                f"starts at sample {chunk.start_sample}, expected "
                f"{expected_start}")
        parts.append(chunk)
        state[1] = expected_start + chunk.n_samples
        if not chunk.is_last:
            return None
        del self._sessions[chunk.session_id]
        signals = {
            name: np.concatenate([p.signals[name] for p in parts])
            for name in parts[0].signals
        }
        return Recording(chunk.fs, signals, dict(chunk.annotations),
                         dict(chunk.meta))
