"""Chunked recording transport: the unit of streaming ingest.

A :class:`RecordingChunk` is a contiguous slice of one session's
channels as a device would radio it out: session id, sequence number,
sample offset, the sample payload, and — on the final chunk — the
session's annotations and metadata (the trailer a device transmits
once the measurement ends).  Chunking then reassembling is exact:
slicing and concatenating float arrays never touches a sample, so a
:class:`SessionAssembler` reproduces the original
:class:`~repro.io.records.Recording` bit-identically, which is what
lets the streaming executor pin its results against the offline batch
path.

:class:`SessionSource` is the protocol every chunk producer satisfies
(iterate -> chunks in arrival order); :class:`RecordingSource` adapts
one materialized recording, and :class:`~repro.ingest.fleet.DeviceFleet`
interleaves many simulated devices.

The zero-copy transport plane mirrors PR 5's recording pair one layer
upstream: :func:`publish_chunk` writes a chunk's arrays **once** into a
:class:`ChunkArenaRing` (per-session shared-memory blocks with bump
allocation) and returns a tiny :class:`ChunkDescriptor`; the work
queue's byte backpressure reads the descriptor's ``nbytes``; the drain
loop resolves it back to read-only views via
:func:`chunk_from_descriptor`; the journal's iovec codec writes those
same bytes to disk; and the ring releases a session's blocks the
moment its trailer is finalized.  ``set_ingest_backend("reference")``
keeps the historical object-mode transport as the oracle the parity
sweep pins the arena plane against — the same swappable-backend
pattern as PRs 2/5/6.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, \
    runtime_checkable

import numpy as np

from repro.core.shm import ALIGNMENT, ShmArena, aligned_nbytes, \
    attach_view
from repro.errors import ConfigurationError, SignalError
from repro.ingest.stats import ingest_stats
from repro.io.records import Recording

__all__ = ["RecordingChunk", "SessionSource", "RecordingSource",
           "SessionAssembler", "chunk_recording",
           "ChunkDescriptor", "ChunkArenaRing", "publish_chunk",
           "chunk_from_descriptor", "INGEST_BACKENDS",
           "set_ingest_backend", "ingest_backend",
           "use_ingest_backend"]


@dataclass(frozen=True)
class RecordingChunk:
    """One contiguous slice of a session's sampled channels.

    Parameters
    ----------
    session_id:
        Identifies the session the chunk belongs to; chunks of
        different sessions interleave freely on the wire.
    seq:
        0-based chunk index within the session; consumers enforce
        contiguity.
    fs:
        Sampling rate shared by every channel of the session.
    signals:
        Mapping of channel name to the 1-D slice payload.
    start_sample:
        Offset of the chunk's first sample in the full session.
    is_last:
        Marks the session trailer; only the trailer carries
        ``annotations``/``meta`` (ground truth and scalar metadata are
        transmitted once, after the measurement).
    arrival_s:
        Simulated arrival timestamp (seconds since ingest start) —
        the fleet uses it to interleave devices; it never influences
        sample values.
    annotations / meta:
        The session's annotation arrays and scalar metadata; empty on
        every chunk except the trailer.
    """

    session_id: str
    seq: int
    fs: float
    signals: dict
    start_sample: int
    is_last: bool = False
    arrival_s: float = 0.0
    annotations: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seq < 0 or self.start_sample < 0:
            raise ConfigurationError(
                "seq and start_sample must be non-negative")
        if self.fs <= 0:
            raise ConfigurationError("fs must be positive")
        if not self.signals:
            raise SignalError("a chunk needs at least one channel")
        lengths = {np.asarray(v).size for v in self.signals.values()}
        if len(lengths) != 1 or 0 in lengths:
            raise SignalError(
                f"chunk channels must share one non-zero length, got "
                f"{sorted(lengths)}")

    @property
    def n_samples(self) -> int:
        """Samples per channel in this chunk."""
        return next(iter(self.signals.values())).size

    @property
    def nbytes(self) -> int:
        """Approximate payload size (sample data only) — the quantity
        the work queue's byte-based backpressure bounds."""
        return int(sum(np.asarray(v).nbytes
                       for v in self.signals.values()))


@runtime_checkable
class SessionSource(Protocol):
    """Anything that yields :class:`RecordingChunk` in arrival order.

    Sources may interleave chunks of many concurrent sessions; within
    one session, ``seq`` must be contiguous from 0 and exactly one
    chunk must carry ``is_last``.
    """

    def __iter__(self) -> Iterator[RecordingChunk]:
        """Chunks in (simulated) arrival order."""
        ...


def chunk_recording(recording: Recording, session_id: str,
                    chunk_s: float = 2.0,
                    start_s: float = 0.0,
                    jitter: Optional[np.random.Generator] = None,
                    jitter_s: float = 0.0):
    """Slice one recording into transport chunks (a generator).

    The last chunk is the trailer: it carries the recording's
    annotations and metadata.  ``arrival_s`` is ``start_s`` plus the
    chunk's end time (a chunk cannot arrive before its samples exist)
    plus optional non-negative jitter — radio/queueing delay in the
    simulated link.
    """
    if chunk_s <= 0:
        raise ConfigurationError("chunk_s must be positive")
    n = recording.n_samples
    step = max(1, int(round(chunk_s * recording.fs)))
    n_chunks = (n + step - 1) // step
    for k in range(n_chunks):
        i0, i1 = k * step, min((k + 1) * step, n)
        last = i1 == n
        delay = 0.0
        if jitter is not None and jitter_s > 0.0:
            delay = float(abs(jitter.normal(0.0, jitter_s)))
        yield RecordingChunk(
            session_id=session_id,
            seq=k,
            fs=recording.fs,
            signals={name: data[i0:i1]
                     for name, data in recording.signals.items()},
            start_sample=i0,
            is_last=last,
            arrival_s=start_s + i1 / recording.fs + delay,
            annotations=dict(recording.annotations) if last else {},
            meta=dict(recording.meta) if last else {},
        )


class RecordingSource:
    """A single-session :class:`SessionSource` over one materialized
    recording — the adapter that lets offline data replay through the
    streaming path."""

    def __init__(self, recording: Recording, session_id: str = "session",
                 chunk_s: float = 2.0) -> None:
        self.recording = recording
        self.session_id = session_id
        self.chunk_s = float(chunk_s)

    def __iter__(self) -> Iterator[RecordingChunk]:
        """The recording's chunks, in order."""
        return chunk_recording(self.recording, self.session_id,
                               self.chunk_s)


class SessionAssembler:
    """Reassembles interleaved chunk streams into whole recordings.

    ``add`` returns the completed :class:`Recording` when a session's
    trailer arrives (and forgets the session), ``None`` otherwise.
    Out-of-order or duplicated sequence numbers fail loudly — the
    simulated link is ordered per session, so a gap is a programming
    error, not noise.
    """

    def __init__(self) -> None:
        #: session_id -> [parts, next_start_sample] (the running
        #: sample count makes contiguity checks O(1) per chunk).
        self._sessions: dict = {}

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def open_sessions(self) -> tuple:
        """Ids of sessions with chunks pending assembly."""
        return tuple(sorted(self._sessions))

    def add(self, chunk: RecordingChunk):
        """Fold one chunk in; the assembled recording on the trailer."""
        state = self._sessions.get(chunk.session_id)
        if state is None:
            state = self._sessions[chunk.session_id] = [[], 0]
        parts, expected_start = state
        if chunk.seq != len(parts):
            raise SignalError(
                f"session {chunk.session_id!r}: expected chunk "
                f"{len(parts)}, got {chunk.seq}")
        if chunk.start_sample != expected_start:
            raise SignalError(
                f"session {chunk.session_id!r}: chunk {chunk.seq} "
                f"starts at sample {chunk.start_sample}, expected "
                f"{expected_start}")
        parts.append(chunk)
        state[1] = expected_start + chunk.n_samples
        if not chunk.is_last:
            return None
        del self._sessions[chunk.session_id]
        signals = {
            name: np.concatenate([p.signals[name] for p in parts])
            for name in parts[0].signals
        }
        return Recording(chunk.fs, signals, dict(chunk.annotations),
                         dict(chunk.meta))


# -- the zero-copy transport plane ----------------------------------------

@dataclass(frozen=True)
class ChunkDescriptor:
    """A :class:`RecordingChunk` by reference.

    Field-for-field the chunk's coordinates, but ``signals`` and
    ``annotations`` map names to
    :class:`~repro.core.shm.ShmDescriptor` slots inside an arena ring
    instead of arrays — a few dozen bytes on the queue however long
    the chunk.  ``nbytes`` reports the *described* sample payload
    (signals only, matching :attr:`RecordingChunk.nbytes`), so the
    work queue's byte backpressure keeps bounding real buffered
    memory.
    """

    session_id: str
    seq: int
    fs: float
    signals: dict
    start_sample: int
    is_last: bool = False
    arrival_s: float = 0.0
    annotations: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        """Samples per channel the descriptor points at."""
        descriptor = next(iter(self.signals.values()))
        return int(np.prod(descriptor.shape, dtype=np.int64))

    @property
    def nbytes(self) -> int:
        """Sample payload bytes living in the arena for this chunk."""
        return int(sum(d.nbytes for d in self.signals.values()))


#: First-block slack over a source's exact ``session_nbytes`` hint —
#: covers per-array alignment rounding so a hinted session almost
#: always fits its first block.
_HINT_SLACK = 16 * 1024


class ChunkArenaRing:
    """Per-session shared-memory rings device chunks are written into.

    The producer side of the zero-copy contract: :meth:`publish`
    copies a chunk's arrays **once** into the session's current
    :class:`~repro.core.shm.ShmArena` block (rolling a new block when
    the current one fills; the first block is pre-sized from the
    source's ``session_nbytes`` hint when available) and returns a
    :class:`ChunkDescriptor`.  Every later consumer — the drain loop,
    the iovec journal codec, the causal previewer, the assembler —
    reads those bytes in place.

    :meth:`release_session` frees a session's blocks as soon as its
    trailer has been submitted for finalize: the blocks are unlinked
    immediately while views already handed out stay valid (the
    views-survive-release semantics of :meth:`ShmArena.release`), so a
    group-commit journal writer still draining that session's iovecs
    is never racing the release.  Thread-safe: the producer publishes
    while the drain loop views and releases.
    """

    #: Default block size; sessions larger than this roll more blocks.
    DEFAULT_BLOCK_BYTES = 1 << 20

    def __init__(self, block_bytes: int = DEFAULT_BLOCK_BYTES,
                 size_hint: Optional[Callable[[str], int]] = None
                 ) -> None:
        if block_bytes < ALIGNMENT:
            raise ConfigurationError(
                f"block_bytes must be >= {ALIGNMENT}")
        self.block_bytes = int(block_bytes)
        self._size_hint = size_hint
        self._sessions: dict = {}      # sid -> [ShmArena, ...]
        self._blocks: dict = {}        # block name -> ShmArena
        self._lock = threading.Lock()
        self._released = False

    # -- internals (caller holds the lock) --------------------------------

    def _arena_for(self, session_id: str, need: int) -> ShmArena:
        arenas = self._sessions.get(session_id)
        if arenas:
            tail = arenas[-1]
            if tail.nbytes - tail.used >= need:
                return tail
        size = max(self.block_bytes, need)
        if not arenas and self._size_hint is not None:
            try:
                hinted = int(self._size_hint(session_id))
            except Exception:
                hinted = 0
            if hinted > 0:
                # A hinted first block is sized to its session, not
                # floored at block_bytes: arenas pre-fault every page
                # they reserve, so a 1 MiB floor would touch several
                # times the bytes a small session ever writes.
                size = max(aligned_nbytes(hinted) + _HINT_SLACK, need)
        arena = ShmArena(size)
        self._sessions.setdefault(session_id, []).append(arena)
        self._blocks[arena.name] = arena
        ingest_stats().add(arena_blocks=1, arena_bytes_reserved=size)
        return arena

    # -- producer side -----------------------------------------------------

    def _put_locked(self, array, session_id: str):
        """One array into the ring (caller holds the lock); returns
        ``(descriptor, aligned bytes consumed)``."""
        array = np.asarray(array)
        need = aligned_nbytes(array.nbytes)
        arena = self._arena_for(session_id, need)
        return arena.put(array), need

    def put(self, array, session_id: str = "") -> "ShmDescriptor":
        """Write one array into the session's ring; its descriptor.

        The single producer-side copy of the zero-copy contract (a
        dtype cast, when needed, is folded into this same write).
        Raises ``OSError`` when the host cannot grow shared memory —
        callers degrade to object-mode transport.
        """
        with self._lock:
            if self._released:
                raise ConfigurationError("arena ring is released")
            descriptor, need = self._put_locked(array, session_id)
        ingest_stats().add(arena_bytes_used=need)
        return descriptor

    def publish(self, chunk: RecordingChunk) -> ChunkDescriptor:
        """Write one chunk's arrays into its session's ring; the
        resulting :class:`ChunkDescriptor` (see :func:`publish_chunk`).

        One lock acquisition and one stats credit for the whole chunk
        — per-array locking showed up in the hot-path profile."""
        sid = chunk.session_id
        used = 0
        signals = {}
        annotations = {}
        with self._lock:
            if self._released:
                raise ConfigurationError("arena ring is released")
            for name, data in chunk.signals.items():
                signals[name], need = self._put_locked(data, sid)
                used += need
            for name, data in chunk.annotations.items():
                annotations[name], need = self._put_locked(data, sid)
                used += need
        published = sum(d.nbytes for d in signals.values())
        published += sum(d.nbytes for d in annotations.values())
        ingest_stats().add(descriptor_chunks=1,
                           bytes_published=published,
                           arena_bytes_used=used)
        return ChunkDescriptor(
            session_id=sid, seq=chunk.seq, fs=chunk.fs,
            signals=signals, start_sample=chunk.start_sample,
            is_last=chunk.is_last, arrival_s=chunk.arrival_s,
            annotations=annotations, meta=dict(chunk.meta))

    # -- consumer side -----------------------------------------------------

    def view(self, descriptor) -> np.ndarray:
        """Read-only zero-copy view of one published array.

        Resolves through the ring's own block handles (same process as
        the producer — no second mapping); descriptors of blocks this
        ring does not own fall back to
        :func:`~repro.core.shm.attach_view` (cross-process)."""
        with self._lock:
            arena = self._blocks.get(descriptor.block)
        if arena is None:
            return attach_view(descriptor)
        return arena.view(descriptor)

    def release_session(self, session_id: str) -> None:
        """Free a session's blocks (after its finalize submission).

        Existing views stay valid — release unlinks the names and
        drops the ring's handles; the OS frees each block when its
        last view dies.  No-op for unknown sessions."""
        with self._lock:
            arenas = self._sessions.pop(session_id, None)
            if not arenas:
                return
            for arena in arenas:
                self._blocks.pop(arena.name, None)
                arena.release()
        ingest_stats().add(arena_sessions_released=1)

    def release(self) -> None:
        """Free every block and refuse further puts (idempotent)."""
        with self._lock:
            self._released = True
            arenas = [a for arenas in self._sessions.values()
                      for a in arenas]
            released = len(self._sessions)
            self._sessions.clear()
            self._blocks.clear()
            for arena in arenas:
                arena.release()
        if released:
            ingest_stats().add(arena_sessions_released=released)

    def session_utilization(self) -> dict:
        """Per open session: payload bytes used / bytes reserved."""
        with self._lock:
            return {
                sid: (sum(a.used for a in arenas)
                      / sum(a.nbytes for a in arenas))
                for sid, arenas in self._sessions.items() if arenas
            }

    @property
    def open_sessions(self) -> tuple:
        """Ids of sessions currently holding ring blocks."""
        with self._lock:
            return tuple(sorted(self._sessions))

    def __enter__(self) -> "ChunkArenaRing":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def publish_chunk(chunk: RecordingChunk,
                  ring: ChunkArenaRing) -> ChunkDescriptor:
    """Write a chunk into an arena ring; descriptor by value.

    The chunk-plane twin of
    :func:`~repro.core.shm.publish_recording`: one producer-side copy
    into shared memory, then a constant-size descriptor on the queue.
    """
    return ring.publish(chunk)


def chunk_from_descriptor(descriptor: ChunkDescriptor,
                          ring: Optional[ChunkArenaRing] = None
                          ) -> RecordingChunk:
    """Materialise a chunk as read-only zero-copy views.

    The twin of :func:`~repro.core.shm.recording_from_descriptor`.
    With ``ring`` the views resolve through the ring's own handles
    (the in-process drain loop); without it each block is attached via
    the process-local :func:`~repro.core.shm.attach_view` cache (a
    consumer in another process).  Views are read-only — a stage
    mutating its input would corrupt the shared buffer.
    """
    resolve = ring.view if ring is not None else attach_view
    return RecordingChunk(
        session_id=descriptor.session_id,
        seq=descriptor.seq,
        fs=descriptor.fs,
        signals={name: resolve(d)
                 for name, d in descriptor.signals.items()},
        start_sample=descriptor.start_sample,
        is_last=descriptor.is_last,
        arrival_s=descriptor.arrival_s,
        annotations={name: resolve(d)
                     for name, d in descriptor.annotations.items()},
        meta=dict(descriptor.meta),
    )


# -- the swappable ingest transport ---------------------------------------

#: ``"arena"`` is the production transport (descriptor chunks through
#: per-session rings); ``"reference"`` keeps chunks as Python objects —
#: the historical path, retained as the parity oracle and the bench
#: baseline.
INGEST_BACKENDS = ("arena", "reference")

_ingest_backend = "arena"


def set_ingest_backend(name: str) -> None:
    """Select the chunk transport process-wide.

    ``"arena"`` publishes chunks into per-session shared-memory rings
    and ships descriptors; ``"reference"`` ships the chunk objects
    themselves — the oracle the zero-copy parity sweep compares
    against.
    """
    global _ingest_backend
    if name not in INGEST_BACKENDS:
        raise ConfigurationError(
            f"unknown ingest backend {name!r}; "
            f"choose from {INGEST_BACKENDS}")
    _ingest_backend = name


def ingest_backend() -> str:
    """The currently selected chunk transport."""
    return _ingest_backend


@contextlib.contextmanager
def use_ingest_backend(name: str):
    """Temporarily switch the chunk transport (benches, tests)."""
    previous = _ingest_backend
    set_ingest_backend(name)
    try:
        yield
    finally:
        set_ingest_backend(previous)
