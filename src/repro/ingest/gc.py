"""Journal garbage collection: bounded disk for a long-lived service.

A fleet service journals every chunk it accepts, so without
reclamation the journal grows with total traffic, not with live
traffic.  :func:`journal_gc` reclaims the space of *provably dead*
sessions — completed, manifested, no damage — by deleting segments
made entirely of their records and rewriting mixed segments with only
the live records kept (byte-for-byte copies of the original frames,
so live sessions replay bit-identically afterwards).

The collection protocol is a two-phase write-ahead scheme, crash-safe
at every interruption point (pinned by the fault suite):

1. **Mark** — every session about to lose records gets its manifest
   rewritten (atomically) with ``"collected": true``.  From that
   moment a scan treats the session's remaining records as reclaimable
   garbage, so a crash anywhere later never turns leftovers into
   phantom "damage".
2. **Sweep** — mixed segments are compacted by writing the surviving
   frames to a ``*.gctmp`` sidecar (invisible to every scan), fsyncing
   it, then :func:`os.replace`-ing it over the original name; fully
   dead segments are unlinked.  A rerun after a crash finishes the
   sweep: marked sessions stay dead, stale sidecars are removed.

Damage makes collection *conservative*: any segment holding a damaged
record it cannot prove dead, or any record of a quarantined session
(those are the re-ingest sidecar's input), is left untouched and
reported as skipped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.ingest.journal import (JournalScan, _manifest_name,
                                  repair_torn_tail, scan_journal)
from repro.io.journal_records import scan_segment

__all__ = ["GcReport", "collectible_sessions", "journal_gc",
           "journal_bytes"]

#: Suffix of the compaction sidecar a crashed sweep may leave behind.
#: It does not end in ``.log``, so no scan ever reads it as a segment.
_GC_TMP_SUFFIX = ".gctmp"


@dataclass
class GcReport:
    """What one :func:`journal_gc` pass did (or would do, dry-run)."""

    directory: Path
    #: Segment filenames deleted outright (every record dead).
    dropped_segments: tuple = ()
    #: Segment filenames rewritten with only their live records.
    compacted_segments: tuple = ()
    #: ``(segment filename, reason)`` for segments damage made
    #: uncollectable — the conservative no-op paths.
    skipped_segments: tuple = ()
    #: Session ids newly marked ``collected`` by this pass.
    sessions_collected: tuple = ()
    records_dropped: int = 0
    records_kept: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    torn_tail_repaired: bool = False
    stale_tmp_removed: int = 0
    dry_run: bool = False

    @property
    def noop(self) -> bool:
        """Whether the pass changed (or would change) nothing."""
        return not (self.dropped_segments or self.compacted_segments
                    or self.sessions_collected
                    or self.torn_tail_repaired or self.stale_tmp_removed)

    def to_dict(self) -> dict:
        """JSON-safe summary (the CLI's ``--json`` payload)."""
        return {
            "directory": str(self.directory),
            "dropped_segments": list(self.dropped_segments),
            "compacted_segments": list(self.compacted_segments),
            "skipped_segments": [list(pair)
                                 for pair in self.skipped_segments],
            "sessions_collected": list(self.sessions_collected),
            "records_dropped": self.records_dropped,
            "records_kept": self.records_kept,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "torn_tail_repaired": self.torn_tail_repaired,
            "stale_tmp_removed": self.stale_tmp_removed,
            "dry_run": self.dry_run,
        }


def journal_bytes(directory) -> int:
    """Total size of a journal's segment files, in bytes."""
    return sum(path.stat().st_size
               for path in Path(directory).glob("segment-*.log"))


def collectible_sessions(scan: JournalScan) -> frozenset:
    """Session ids whose journal records are provably dead.

    Dead means: the manifest asserts completion, the session is not
    quarantined, and either the log reassembles it completely or a
    previous GC pass already marked it collected.  A completed session
    *without* a manifest is not dead — the manifest write is the
    durable completion point, so until it lands the log is the only
    authority and must stay replayable.
    """
    dead = set()
    for sid, manifest in scan.manifests.items():
        if not manifest.get("completed") or sid in scan.damaged:
            continue
        if manifest.get("collected") or sid in scan.complete:
            dead.add(sid)
    return frozenset(dead)


def _fsync_directory(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _mark_collected(directory: Path, session_id: str,
                    manifest: dict) -> None:
    updated = dict(manifest)
    updated["collected"] = True
    path = directory / _manifest_name(session_id)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(updated, indent=2) + "\n")
    os.replace(tmp, path)


def journal_gc(directory, dry_run: bool = False,
               crash_hook: Optional[Callable] = None) -> GcReport:
    """Reclaim the journal space of finalized, manifested sessions.

    Deletes segments whose every record belongs to a dead session and
    compacts segments mixing dead and live records (live frames are
    byte-copied, preserving order, so surviving sessions replay
    bit-identically).  Damage the pass cannot prove dead makes the
    affected segment a reported no-op.  With ``dry_run`` the journal
    is not touched and the report describes what a real pass would do.

    ``crash_hook`` is fault-injection instrumentation: it is invoked
    as ``crash_hook(stage, detail)`` at every durable step ("marked",
    "compact-written", "compact-swapped", "dropped") and may raise to
    simulate a crash at that exact point — the fault suite drives it
    to pin crash-safety.
    """
    directory = Path(directory)
    scan = scan_journal(directory)
    report = GcReport(directory=directory, dry_run=dry_run,
                      bytes_before=journal_bytes(directory))

    def hook(stage: str, detail: str) -> None:
        if crash_hook is not None:
            crash_hook(stage, detail)

    # A crashed previous sweep may have left compaction sidecars;
    # they were never visible to a scan, so removal is always safe.
    for tmp in sorted(directory.glob(f"segment-*{_GC_TMP_SUFFIX}")):
        if not dry_run:
            tmp.unlink()
        report.stale_tmp_removed += 1

    # Heal a torn tail first — the same safe WAL-recovery truncation a
    # reopening journal performs — so the last segment classifies
    # cleanly instead of being skipped for a repairable condition.
    if scan.torn_tail is not None and not dry_run:
        report.torn_tail_repaired = repair_torn_tail(scan)

    dead = collectible_sessions(scan)
    skipped = []
    plans = []                 # (path, segment_scan, n_dead, n_live)
    for path in scan.segments:
        segment = scan_segment(path)
        if segment.lost_framing_offset is not None:
            skipped.append((path.name, "lost framing"))
            continue
        if segment.torn_offset is not None:
            # Only reachable in dry-run (real passes healed the tail)
            # or for an externally truncated middle segment.
            skipped.append((path.name, "torn record"))
            continue
        reason = None
        n_dead = n_live = 0
        for entry in segment.entries:
            sid = entry.session_id
            if sid is not None and sid in scan.damaged:
                # Quarantined sessions keep every record on disk:
                # they are the evidence recovery reports and the
                # input ``RecoveryManager.reingest`` moves aside.
                reason = f"records of quarantined session {sid!r}"
                break
            if entry.error is not None and (sid is None
                                            or sid not in dead):
                reason = "damaged record it cannot prove dead"
                break
            if sid in dead:
                n_dead += 1
            else:
                n_live += 1
        if reason is not None:
            skipped.append((path.name, reason))
        elif n_dead:
            plans.append((path, segment, n_dead, n_live))
    report.skipped_segments = tuple(skipped)
    if not plans:
        report.bytes_after = report.bytes_before
        return report

    # Phase 1 — write-ahead mark: every session about to lose records
    # becomes ``collected`` *before* any record is removed, so a crash
    # between here and the sweep leaves garbage, never damage.
    to_mark = sorted({entry.session_id
                      for _, segment, _, _ in plans
                      for entry in segment.entries
                      if entry.session_id in dead
                      and entry.session_id not in scan.collected})
    for sid in to_mark:
        if not dry_run:
            _mark_collected(directory, sid, scan.manifests[sid])
            hook("marked", sid)
    report.sessions_collected = tuple(to_mark)

    # Phase 2 — sweep.
    dropped, compacted = [], []
    for path, segment, n_dead, n_live in plans:
        if n_live == 0:
            if not dry_run:
                path.unlink()
                hook("dropped", path.name)
            dropped.append(path.name)
            report.records_dropped += n_dead
            continue
        if not dry_run:
            data = path.read_bytes()
            tmp = Path(str(path) + _GC_TMP_SUFFIX)
            with open(tmp, "wb") as fh:
                for entry in segment.entries:
                    if entry.session_id not in dead:
                        fh.write(data[entry.offset:
                                      entry.offset + entry.length])
                fh.flush()
                os.fsync(fh.fileno())
            hook("compact-written", path.name)
            os.replace(tmp, path)
            hook("compact-swapped", path.name)
        compacted.append(path.name)
        report.records_dropped += n_dead
        report.records_kept += n_live
    if not dry_run:
        _fsync_directory(directory)
    report.dropped_segments = tuple(dropped)
    report.compacted_segments = tuple(compacted)
    report.bytes_after = (report.bytes_before if dry_run
                          else journal_bytes(directory))
    return report
