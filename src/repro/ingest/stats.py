"""Process-wide counters of the zero-copy ingest data plane.

The PR 5 :class:`~repro.core.executor.IpcStats` accounting made the
process backend's pipe traffic falsifiable: tests assert the
descriptor collapse instead of trusting it.  This module is the same
idea for the ingest path.  Every layer of the chunk plane credits its
traffic here:

* the arena ring counts **published** bytes (the single producer
  write) and the blocks/bytes it reserved;
* the journal codec counts every **intermediate byte it
  materializes** — the quantity the copy-free iovec path drives to
  zero and the object-mode reference path pays three to four times
  per record;
* the group-commit writer counts its flush windows and fsyncs, so the
  "one fsync per window" contract is a number, not a comment.

``bytes_copied`` is therefore the headline: on the arena-backed hot
path (descriptor queue + iovec journal) it stays **zero** for
arbitrarily long streams — asserted by the zero-copy tests — while
``repro cache-stats`` renders the counters for capacity planning.

Counters are process-wide and monotonic (reset via
:func:`reset_ingest_stats`); updates take a lock because producer
thread, drain loop and the journal's background writer all credit
them concurrently.
"""

from __future__ import annotations

import threading

__all__ = ["IngestStats", "ingest_stats", "reset_ingest_stats"]


class IngestStats:
    """Counters of the ingest data plane (see attribute docs)."""

    _FIELDS = (
        "descriptor_chunks", "object_chunks", "bytes_published",
        "bytes_copied", "arena_blocks", "arena_bytes_reserved",
        "arena_bytes_used", "arena_sessions_released",
        "journal_records", "journal_bytes_written",
        "group_flushes", "group_fsyncs", "strict_fsyncs",
        "rehydrated_chunks",
        "serve_sessions_accepted", "serve_sessions_done",
        "serve_sessions_quarantined", "serve_sheds",
        "serve_retries", "serve_deadline_hits", "serve_degradations",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Chunks that crossed the queue as arena descriptors.
        self.descriptor_chunks = 0
        #: Chunks that crossed the queue as Python objects (the
        #: ``"reference"`` ingest backend, or an arena-less degrade).
        self.object_chunks = 0
        #: Sample bytes written into arena rings by ``publish_chunk`` —
        #: the single producer-side write of the zero-copy contract.
        self.bytes_published = 0
        #: Intermediate bytes materialized after publication: codec
        #: ``tobytes``/join copies, dtype casts, rehydration slabs.
        #: Zero on the descriptor + iovec hot path.
        self.bytes_copied = 0
        #: Shared-memory blocks allocated by arena rings.
        self.arena_blocks = 0
        #: Capacity of those blocks, bytes.
        self.arena_bytes_reserved = 0
        #: Bytes actually bump-allocated inside them.
        self.arena_bytes_used = 0
        #: Sessions whose ring blocks were released after finalize.
        self.arena_sessions_released = 0
        #: Records the journal wrote (either codec).
        self.journal_records = 0
        #: Frame bytes the journal put on disk.
        self.journal_bytes_written = 0
        #: Group-commit flush windows (each one ``writev`` drain).
        self.group_flushes = 0
        #: fsyncs issued by the group-commit writer (one per window).
        self.group_fsyncs = 0
        #: fsyncs issued by strict-durability appends (one per record).
        self.strict_fsyncs = 0
        #: Chunks recovery rehydrated straight into arena slabs.
        self.rehydrated_chunks = 0
        #: Sessions the serve daemon admitted (supervised lifecycles).
        self.serve_sessions_accepted = 0
        #: Supervised sessions finalized to DONE.
        self.serve_sessions_done = 0
        #: Supervised sessions quarantined (stalled past their chunk
        #: deadline, finalize timeout/poison, journal damage).
        self.serve_sessions_quarantined = 0
        #: New sessions rejected by overload shedding (admission-class
        #: degradation: shed the newcomers, never the journaled).
        self.serve_sheds = 0
        #: Retry attempts the daemon's backoff policies consumed
        #: (broken finalize pools, journal OSErrors).
        self.serve_retries = 0
        #: Deadline expirations (per-chunk ingest + finalize timeout).
        self.serve_deadline_hits = 0
        #: Degradation-level escalations the overload ladder took.
        self.serve_degradations = 0

    def add(self, **deltas) -> None:
        """Credit counters atomically (``name=delta`` keywords)."""
        with self._lock:
            for name, delta in deltas.items():
                if name not in self._FIELDS:
                    raise AttributeError(f"no ingest counter {name!r}")
                setattr(self, name, getattr(self, name) + int(delta))

    def as_dict(self) -> dict:
        """The counters as a plain dict (stats views and JSON)."""
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    @property
    def arena_utilization(self) -> float:
        """Used / reserved bytes of all arena blocks (0 when none)."""
        with self._lock:
            if self.arena_bytes_reserved == 0:
                return 0.0
            return self.arena_bytes_used / self.arena_bytes_reserved


_STATS = IngestStats()


def ingest_stats() -> IngestStats:
    """The process-wide ingest counters (live object, not a copy)."""
    return _STATS


def reset_ingest_stats() -> IngestStats:
    """Zero every counter (tests, fresh bench sections); returns the
    live stats object."""
    stats = _STATS
    with stats._lock:
        for name in IngestStats._FIELDS:
            setattr(stats, name, 0)
    return stats
