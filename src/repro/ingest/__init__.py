"""Streaming ingest: chunked session sources, a simulated device
fleet, a bounded work queue with backpressure, the streaming executor
that drains it into the stage graph — and the durability layer that
lets all of it survive a crash.

The offline executor (:mod:`repro.core.executor`) consumes fully
materialized recording lists; nothing there models data *arriving*.
This package does: a :class:`~repro.ingest.chunks.SessionSource`
yields :class:`~repro.ingest.chunks.RecordingChunk` objects over
(simulated) time, a :class:`~repro.ingest.fleet.DeviceFleet` simulates
N concurrent touch devices (optionally over repeated measurement
rounds with dropout/rejoin churn) feeding a
:class:`~repro.ingest.workqueue.BoundedWorkQueue`, and a
:class:`~repro.ingest.streaming.StreamingExecutor` drains the queue —
conditioning each chunk causally as it lands (the vectorized
counterpart of the :mod:`repro.rt` kernels, pinned against them by
tests) and running the offline stage graph on the assembled session so
streaming results are bit-identical to ``process_batch``.

Durability rides the same drain loop: a
:class:`~repro.ingest.journal.ChunkJournal` persists every consumed
chunk as a CRC-framed record before analysis sees it, and a
:class:`~repro.ingest.recovery.RecoveryManager` replays the journal
after a crash — finalizing completed sessions bit-identically to the
interrupted run and resuming open ones when their source reconnects.

Transport is zero-copy by default: the producer publishes each chunk
once into a per-session :class:`~repro.ingest.chunks.ChunkArenaRing`
and ships a :class:`~repro.ingest.chunks.ChunkDescriptor` through the
queue; the journal writes the same shared bytes through its iovec
codec; :mod:`repro.ingest.stats` counts every byte the plane publishes
or copies (the hot path's ``bytes_copied`` is asserted zero).  The
historical object transport survives as the ``"reference"`` ingest
backend (:func:`~repro.ingest.chunks.use_ingest_backend`), the oracle
the parity sweep pins the arena plane against.
"""

from repro.ingest.chunks import (
    ChunkArenaRing,
    ChunkDescriptor,
    INGEST_BACKENDS,
    RecordingChunk,
    RecordingSource,
    SessionAssembler,
    SessionSource,
    chunk_from_descriptor,
    chunk_recording,
    ingest_backend,
    publish_chunk,
    set_ingest_backend,
    use_ingest_backend,
)
from repro.ingest.fleet import (
    DeviceFleet,
    FleetConfig,
    SessionSchedule,
    SimulatedDevice,
)
from repro.ingest.gc import GcReport, collectible_sessions, journal_gc
from repro.ingest.journal import (
    ChunkJournal,
    DURABILITY_MODES,
    JOURNAL_CODECS,
    JournalScan,
    scan_journal,
)
from repro.ingest.recovery import (
    RecoveryManager,
    RecoveryResult,
    ReingestReport,
)
from repro.ingest.stats import IngestStats, ingest_stats, \
    reset_ingest_stats
from repro.ingest.streaming import (
    CausalIcgConditioner,
    SessionResult,
    StreamingExecutor,
)
from repro.ingest.workqueue import BoundedWorkQueue, QueueStats

__all__ = [
    "RecordingChunk", "SessionSource", "RecordingSource",
    "SessionAssembler", "chunk_recording",
    "ChunkDescriptor", "ChunkArenaRing", "publish_chunk",
    "chunk_from_descriptor", "INGEST_BACKENDS", "set_ingest_backend",
    "ingest_backend", "use_ingest_backend",
    "IngestStats", "ingest_stats", "reset_ingest_stats",
    "DeviceFleet", "FleetConfig", "SimulatedDevice", "SessionSchedule",
    "BoundedWorkQueue", "QueueStats",
    "StreamingExecutor", "SessionResult", "CausalIcgConditioner",
    "ChunkJournal", "JournalScan", "scan_journal",
    "DURABILITY_MODES", "JOURNAL_CODECS",
    "RecoveryManager", "RecoveryResult", "ReingestReport",
    "GcReport", "collectible_sessions", "journal_gc",
]
