"""Streaming ingest: chunked session sources, a simulated device
fleet, a bounded work queue with backpressure, and the streaming
executor that drains it into the stage graph.

The offline executor (:mod:`repro.core.executor`) consumes fully
materialized recording lists; nothing there models data *arriving*.
This package does: a :class:`~repro.ingest.chunks.SessionSource`
yields :class:`~repro.ingest.chunks.RecordingChunk` objects over
(simulated) time, a :class:`~repro.ingest.fleet.DeviceFleet` simulates
N concurrent touch devices feeding a
:class:`~repro.ingest.workqueue.BoundedWorkQueue`, and a
:class:`~repro.ingest.streaming.StreamingExecutor` drains the queue —
conditioning each chunk causally as it lands (the vectorized
counterpart of the :mod:`repro.rt` kernels, pinned against them by
tests) and running the offline stage graph on the assembled session so
streaming results are bit-identical to ``process_batch``.
"""

from repro.ingest.chunks import (
    RecordingChunk,
    RecordingSource,
    SessionAssembler,
    SessionSource,
    chunk_recording,
)
from repro.ingest.fleet import DeviceFleet, FleetConfig, SimulatedDevice
from repro.ingest.streaming import (
    CausalIcgConditioner,
    SessionResult,
    StreamingExecutor,
)
from repro.ingest.workqueue import BoundedWorkQueue, QueueStats

__all__ = [
    "RecordingChunk", "SessionSource", "RecordingSource",
    "SessionAssembler", "chunk_recording",
    "DeviceFleet", "FleetConfig", "SimulatedDevice",
    "BoundedWorkQueue", "QueueStats",
    "StreamingExecutor", "SessionResult", "CausalIcgConditioner",
]
