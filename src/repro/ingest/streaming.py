"""The streaming executor: drain a chunk queue into the stage graph.

Work flows producer -> queue -> drain loop -> finalize pool:

* a producer thread iterates the :class:`~repro.ingest.chunks.SessionSource`
  (e.g. a :class:`~repro.ingest.fleet.DeviceFleet`) and feeds the
  bounded queue — blocking when consumers fall behind, which is the
  backpressure that bounds peak memory;
* the drain loop pops chunks, advances each session's
  :class:`CausalIcgConditioner` (the live per-chunk view a device UI
  would show) and folds the chunk into a
  :class:`~repro.ingest.chunks.SessionAssembler`;
* when a session's trailer lands, the assembled recording is submitted
  to a finalize pool that runs the *offline* stage graph — the same
  code path as :func:`repro.core.executor.process_batch` — so the
  streaming result for a recording is bit-identical to the batch
  result for that recording.

The per-chunk conditioner is the vectorized form of the causal
:mod:`repro.rt` kernels: state (filter ``zi``, previous sample) is
carried across chunk boundaries, so its output is invariant to how the
session was chunked and matches a per-sample
:class:`~repro.rt.streaming.StreamingBiquadCascade` run — both to
numerical round-off, and both properties pinned by the ingest tests.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.config import PipelineConfig
from repro.core.executor import (
    _discard_persistent_pool,
    persistent_process_pool,
    plan_recording_job,
    process_recording_job,
    process_shm_job,
    recording_job_nbytes,
    resolve_backend,
    resolve_shm_result,
)
from repro.core.pipeline import BeatToBeatPipeline, PipelineResult
from repro.core.shm import ShmArena
from repro.dsp import iir as _iir
from repro.errors import ConfigurationError
from repro.ingest.chunks import (
    ChunkArenaRing,
    ChunkDescriptor,
    INGEST_BACKENDS,
    RecordingChunk,
    SessionAssembler,
    chunk_from_descriptor,
    ingest_backend,
)
from repro.ingest.stats import ingest_stats
from repro.ingest.workqueue import BoundedWorkQueue, QueueStats
from repro.io.records import Recording

__all__ = ["CausalIcgConditioner", "FinalizeDispatcher",
           "SessionResult", "StreamingExecutor"]


class CausalIcgConditioner:
    """Causal, chunk-invariant ICG conditioning for live previews.

    The offline chain is zero-phase (``sosfiltfilt``) and needs the
    whole recording; a device streaming chunks cannot wait for it.
    This conditioner applies the causal counterpart — backward
    difference for ``-dZ/dt``, then the cached low-/high-pass designs
    through :func:`repro.dsp.iir.sosfilt` with carried state — one
    chunk at a time.  The filter state (``zi``) and the previous raw
    sample persist across calls, so feeding a signal in any chunking
    produces the same samples as feeding it whole — equal to within
    numerical round-off (~1e-13: the blocked scan's summation order
    shifts with chunk alignment) — and the output matches a
    per-sample :class:`~repro.rt.streaming.StreamingBiquadCascade`
    cascade at the same tolerance.
    """

    def __init__(self, fs: float,
                 config: Optional[PipelineConfig] = None,
                 cache: Optional[FilterDesignCache] = None) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        config = config or PipelineConfig()
        cache = cache if cache is not None else default_design_cache()
        self.fs = float(fs)
        self._lowpass_sos = cache.icg_lowpass_sos(self.fs, config.icg)
        self._highpass_sos = cache.icg_highpass_sos(self.fs, config.icg)
        self._lowpass_zi = np.zeros((self._lowpass_sos.shape[0], 2))
        self._highpass_zi = (
            None if self._highpass_sos is None
            else np.zeros((self._highpass_sos.shape[0], 2)))
        self._previous: Optional[float] = None

    def process_chunk(self, z_chunk) -> np.ndarray:
        """Conditioned causal ICG samples for one impedance chunk."""
        z = np.asarray(z_chunk, dtype=float)
        previous = z[0] if self._previous is None else self._previous
        icg = -np.diff(z, prepend=previous) * self.fs
        self._previous = float(z[-1])
        icg, self._lowpass_zi = _iir.sosfilt(self._lowpass_sos, icg,
                                             zi=self._lowpass_zi)
        if self._highpass_sos is not None:
            icg, self._highpass_zi = _iir.sosfilt(
                self._highpass_sos, icg, zi=self._highpass_zi)
        return icg


@dataclass
class SessionResult:
    """Everything the streaming executor produced for one session."""

    session_id: str
    recording: Recording            #: the assembled session
    result: PipelineResult          #: offline stage-graph output
    n_chunks: int
    first_arrival_s: float
    last_arrival_s: float
    #: Concatenated causal per-chunk ICG preview (``None`` when the
    #: executor ran with ``preview=False``).
    preview_icg: Optional[np.ndarray] = None


class _InlineResult:
    """Future-alike for synchronously finalized sessions.

    With one thread worker a pool only adds context switching, so the
    drain loop finalizes in place (the queue's backpressure holds the
    producer meanwhile) and wraps the outcome in this resolved future.
    """

    def __init__(self, fn, *args) -> None:
        try:
            self._value, self._error = fn(*args), None
        except Exception as exc:          # re-raised at result()
            self._value, self._error = None, exc

    def result(self):
        """The finalize outcome, raising what the pipeline raised."""
        if self._error is not None:
            raise self._error
        return self._value


class FinalizeDispatcher:
    """The shared finalize path: one assembled session → one
    stage-graph result, identical whoever drives it.

    Both the :class:`StreamingExecutor` (batch-shaped ingest runs) and
    the serve daemon (:mod:`repro.serve`) finalize sessions through
    this object, so a session's result is bit-identical no matter
    which front-end consumed its chunks — the invariant the recovery
    and soak property tests rest on.

    ``backend`` follows :func:`repro.core.executor.process_batch`:
    ``"thread"`` workers share the dispatcher's design ``cache``
    through a per-rate pipeline memo; ``"process"`` ships the
    recording through the shared-memory descriptor plane into the warm
    persistent pool (degrading to the pickle plane when the host
    cannot grow shared memory).
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 backend: str = "thread",
                 cache: Optional[FilterDesignCache] = None) -> None:
        self.config = config
        self.backend = resolve_backend(backend)
        self.cache = cache if cache is not None else default_design_cache()
        self._pipelines: dict = {}

    def pool_context(self, n_workers: int):
        """The finalize pool this dispatcher's backend wants:
        the warm persistent process pool, a thread pool, or ``None``
        (inline finalize) for a single thread worker."""
        if self.backend == "process":
            # Finalize jobs go through the warm persistent pool: the
            # calibration snapshot rides with each submission (workers
            # install it only on change), so streaming results stay
            # bit-identical to the in-process batch path while
            # back-to-back ingest runs reuse one worker fleet.
            return persistent_process_pool(n_workers)
        if n_workers == 1:
            # One thread worker buys nothing over finalizing in the
            # drain loop itself — skip the pool and its switching.
            return nullcontext(None)
        return ThreadPoolExecutor(max_workers=n_workers)

    def submit(self, pool, recording: Recording):
        """Submit one assembled session; returns ``(future, arena)``
        (``arena`` is ``None`` off the shared-memory path)."""
        if self.backend == "process":
            # Zero-copy hand-off: the session's arrays land in a
            # per-session shared-memory arena and the worker receives
            # descriptors — the same data plane as process_batch.  If
            # the host cannot provide the arena (/dev/shm cap), this
            # session degrades to the pickle plane: slower, never
            # wrong.
            try:
                arena = ShmArena(recording_job_nbytes(recording))
            except OSError:
                return pool.submit(process_recording_job, recording,
                                   self.config), None
            try:
                job = plan_recording_job(recording, arena)
                return pool.submit(process_shm_job, job,
                                   self.config), arena
            except Exception:
                arena.release()
                raise
        # Thread workers share the executor's design cache through a
        # per-rate pipeline memo (mirrors process_batch's warm path).
        pipeline = self._pipeline(recording.fs)
        if pool is None:                  # single-worker inline path
            return _InlineResult(pipeline.process_recording,
                                 recording), None
        return pool.submit(pipeline.process_recording, recording), None

    def _pipeline(self, fs: float) -> BeatToBeatPipeline:
        fs = float(fs)
        pipeline = self._pipelines.get(fs)
        if pipeline is None:
            pipeline = BeatToBeatPipeline(fs, self.config,
                                          cache=self.cache)
            self._pipelines[fs] = pipeline
        return pipeline

    def resolve(self, session_id: str, future, arena,
                recording: Recording) -> PipelineResult:
        """Resolve one submitted finalize, releasing its arena.

        A worker dying mid-finalize (``BrokenProcessPool``) degrades
        to re-running the pure job in the parent — slower, never
        wrong — after dropping the broken pool so later fan-outs
        rebuild.  Pipeline exceptions propagate to the caller, which
        owns the retry/quarantine policy.
        """
        try:
            try:
                result = future.result()
                if arena is not None:
                    result = resolve_shm_result(result, arena)
            except BrokenProcessPool:
                # A worker died mid-finalize.  The job is a pure
                # function of the recording we still hold, so rerun it
                # in the parent — slower, never wrong — and drop the
                # broken pool so later fan-outs rebuild.
                _discard_persistent_pool(wait=False)
                warnings.warn(
                    f"finalize worker died for session "
                    f"{session_id!r}; re-running in the parent "
                    f"process", RuntimeWarning, stacklevel=2)
                result = process_recording_job(recording, self.config)
        finally:
            if arena is not None:
                arena.release()
        return result


class StreamingExecutor:
    """Consume a chunked session source through a bounded work queue.

    Parameters
    ----------
    config:
        Stage configuration shared by every session (paper defaults
        when omitted).
    n_workers:
        Finalize-pool width: how many completed sessions may run the
        offline chain concurrently while further chunks stream in.
    finalize_backend:
        ``"thread"`` (default; shares the design ``cache``) or
        ``"process"`` (multi-core finalize, process-local caches) —
        the same trade-off as :func:`repro.core.executor.process_batch`.
    max_chunks / max_bytes:
        Bounds of the ingest queue; the producer blocks when either is
        reached (backpressure), so peak buffered memory never exceeds
        the configured limit.
    preview:
        Whether to run the causal per-chunk conditioner as chunks land
        (the live view); disable to measure pure assemble+finalize
        throughput.
    cache:
        Filter-design cache for preview conditioners and thread-backend
        finalization; the process-wide default when omitted.
    journal:
        A :class:`~repro.ingest.journal.ChunkJournal` to write every
        consumed chunk through *before* it is analysed — the
        durability step that lets a
        :class:`~repro.ingest.recovery.RecoveryManager` replay the run
        after a crash.  The executor does not close the journal; the
        caller owns its lifetime.
    allow_open:
        What a source closing with sessions still open (no trailer
        seen) means.  Without a journal the default is to raise —
        silently dropping a session would fake durability the system
        does not have.  With a journal attached the default flips to
        tolerate: the open sessions' chunks are durable on disk and a
        later recovery/resume completes them; their ids are reported
        in :attr:`last_open_sessions`.
    ingest_backend:
        Chunk transport for this executor: ``"arena"`` publishes each
        chunk once into a per-session
        :class:`~repro.ingest.chunks.ChunkArenaRing` and ships
        descriptors through the queue (released the moment the
        session is submitted for finalize), ``"reference"`` ships the
        chunk objects — bit-identical output, pinned by the parity
        sweep.  ``None`` (default) follows the process-wide
        :func:`~repro.ingest.chunks.ingest_backend` selection.  A host
        that cannot grow shared memory degrades to object transport
        with a one-time warning.

    After :meth:`run`, :attr:`last_queue_stats` holds the queue's
    counters (peak depth/bytes, backpressure events) for capacity
    planning and :attr:`last_open_sessions` the ids left open (always
    empty when ``allow_open`` resolves to ``False``).
    """

    def __init__(self, config: Optional[PipelineConfig] = None,
                 n_workers: int = 2,
                 finalize_backend: str = "thread",
                 max_chunks: Optional[int] = 64,
                 max_bytes: Optional[int] = None,
                 preview: bool = True,
                 cache: Optional[FilterDesignCache] = None,
                 journal=None,
                 allow_open: Optional[bool] = None,
                 ingest_backend: Optional[str] = None) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if (ingest_backend is not None
                and ingest_backend not in INGEST_BACKENDS):
            raise ConfigurationError(
                f"unknown ingest backend {ingest_backend!r}; "
                f"choose from {INGEST_BACKENDS}")
        self.ingest_backend = ingest_backend
        self.config = config
        self.n_workers = int(n_workers)
        self._dispatcher = FinalizeDispatcher(config, finalize_backend,
                                              cache)
        self.finalize_backend = self._dispatcher.backend
        self.max_chunks = max_chunks
        self.max_bytes = max_bytes
        self.preview = bool(preview)
        self.cache = self._dispatcher.cache
        self.journal = journal
        self.allow_open = (journal is not None if allow_open is None
                           else bool(allow_open))
        self.last_queue_stats: Optional[QueueStats] = None
        self.last_open_sessions: tuple = ()

    # -- internals ---------------------------------------------------------

    def _produce(self, source, queue: BoundedWorkQueue,
                 errors: list) -> None:
        ring = self._ring
        try:
            for chunk in source:
                if ring is not None:
                    try:
                        chunk = ring.publish(chunk)
                    except OSError:
                        # The host cannot grow shared memory (/dev/shm
                        # cap): degrade this run to object transport —
                        # slower, never wrong.  Chunks already
                        # published keep resolving through self._ring.
                        ring = None
                        warnings.warn(
                            "shared-memory arena unavailable; ingest "
                            "degrades to object-mode chunks",
                            RuntimeWarning, stacklevel=2)
                        ingest_stats().add(object_chunks=1)
                else:
                    ingest_stats().add(object_chunks=1)
                queue.put(chunk)
        except BaseException as exc:      # propagate through run()
            errors.append(exc)
        finally:
            queue.close()

    # -- the drain loop ----------------------------------------------------

    def run(self, source) -> dict:
        """Ingest every chunk of ``source``; results per session.

        Returns ``{session_id: SessionResult}``.  Producer and
        pipeline exceptions propagate; sessions still open when the
        source closes (no trailer seen) raise, since silently dropping
        a session would fake durability the system does not have.
        """
        queue = BoundedWorkQueue(max_items=self.max_chunks,
                                 max_bytes=self.max_bytes)
        self.last_queue_stats = queue.stats
        backend = (ingest_backend() if self.ingest_backend is None
                   else self.ingest_backend)
        # The ring is created eagerly (allocation happens per publish,
        # so this cannot fail) and sized per session from the source's
        # exact byte hint when it offers one.
        self._ring = (ChunkArenaRing(
            size_hint=getattr(source, "session_nbytes", None))
            if backend == "arena" else None)
        errors: list = []
        producer = threading.Thread(
            target=self._produce, args=(source, queue, errors),
            name="ingest-producer", daemon=True)

        assembler = SessionAssembler()
        conditioners: dict = {}
        previews: dict = {}
        chunk_counts: dict = {}
        first_arrival: dict = {}
        futures: dict = {}

        pool_context = self._dispatcher.pool_context(self.n_workers)
        producer.start()
        try:
            with pool_context as pool:
                while True:
                    burst = queue.drain()
                    if not burst:
                        break
                    for item in burst:
                        # Descriptor transport: resolve the arena
                        # views here, once, for journal + preview +
                        # assembly alike.  Object transport passes
                        # straight through.
                        chunk = (chunk_from_descriptor(item, self._ring)
                                 if isinstance(item, ChunkDescriptor)
                                 else item)
                        sid = chunk.session_id
                        if self.journal is not None:
                            # Durability first: the chunk must be on
                            # disk before any analysis observes it, so
                            # a crash at any later point can replay it.
                            self.journal.append(chunk)
                        chunk_counts[sid] = chunk_counts.get(sid, 0) + 1
                        first_arrival.setdefault(sid, chunk.arrival_s)
                        if self.preview:
                            conditioner = conditioners.get(sid)
                            if conditioner is None:
                                conditioner = CausalIcgConditioner(
                                    chunk.fs, self.config, self.cache)
                                conditioners[sid] = conditioner
                            previews.setdefault(sid, []).append(
                                conditioner.process_chunk(
                                    chunk.signals["z"]))
                        recording = assembler.add(chunk)
                        if recording is not None:
                            conditioners.pop(sid, None)
                            future, arena = self._dispatcher.submit(
                                pool, recording)
                            futures[sid] = (future, arena, recording,
                                            chunk.arrival_s)
                            if self._ring is not None:
                                # The session left the transport
                                # plane (its recording is assembled,
                                # its journal bytes enqueued): free
                                # its ring blocks now — in-flight
                                # views survive the release.
                                self._ring.release_session(sid)
                results = {}
                for sid, (future, arena, recording,
                          last_s) in futures.items():
                    result = self._dispatcher.resolve(
                        sid, future, arena, recording)
                    results[sid] = SessionResult(
                        session_id=sid,
                        recording=recording,
                        result=result,
                        n_chunks=chunk_counts[sid],
                        first_arrival_s=first_arrival[sid],
                        last_arrival_s=last_s,
                        preview_icg=(np.concatenate(previews[sid])
                                     if self.preview else None),
                    )
        finally:
            # A drain-loop failure must not leave the producer blocked
            # on a full queue: closing wakes it (its pending put fails
            # into `errors`, superseded by the propagating exception).
            queue.close()
            producer.join()
            # Release any per-session arenas a failure left behind
            # (idempotent for the ones already resolved above), and
            # the transport ring's remaining blocks.
            for entry in futures.values():
                if entry[1] is not None:
                    entry[1].release()
            if self._ring is not None:
                self._ring.release()
                self._ring = None
        if errors:
            raise errors[0]
        self.last_open_sessions = assembler.open_sessions
        if len(assembler) and not self.allow_open:
            raise ConfigurationError(
                f"source closed with incomplete sessions: "
                f"{list(assembler.open_sessions)}")
        return results
