"""A bounded producer/consumer queue with byte-aware backpressure.

The ingest front-end produces chunks as devices emit them; the
streaming executor consumes them as fast as the pipeline allows.  The
queue between the two is the only buffering in the system, so bounding
it bounds peak memory: ``put`` blocks while the queue is full (by item
count *or* payload bytes), which is exactly the backpressure a real
acquisition service applies to its radios.  The queue keeps the
counters capacity planning needs — peak depth, peak buffered bytes,
how often producers blocked — and the streaming bench records them
next to its throughput figures.

Closing follows the sentinel-free convention: the producer calls
:meth:`close` once, consumers drain remaining items and then receive
``None`` from :meth:`get`.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, QueueClosedError

__all__ = ["BoundedWorkQueue", "QueueStats"]


class QueueStats:
    """Counters of one queue's lifetime (see attribute docs)."""

    def __init__(self) -> None:
        #: Items accepted by ``put`` over the queue's lifetime.
        self.total_put = 0
        #: Items handed out by ``get``.
        self.total_got = 0
        #: Largest simultaneous item count.
        self.peak_depth = 0
        #: Largest simultaneous buffered payload, bytes.
        self.peak_bytes = 0
        #: ``put`` calls that had to wait for space (backpressure
        #: events).
        self.blocked_puts = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (for benches and JSON)."""
        return {"total_put": self.total_put,
                "total_got": self.total_got,
                "peak_depth": self.peak_depth,
                "peak_bytes": self.peak_bytes,
                "blocked_puts": self.blocked_puts}


class BoundedWorkQueue:
    """Blocking FIFO bounded by item count and/or payload bytes.

    Parameters
    ----------
    max_items:
        Maximum simultaneous items; ``None`` leaves the count
        unbounded.
    max_bytes:
        Maximum simultaneous sum of item payload sizes; ``None``
        leaves bytes unbounded.  Items are sized by their ``nbytes``
        attribute, falling back to ``(shape, dtype)``; an item sized
        neither way counts as zero and warns once per queue.

    At least one bound must be set — an unbounded "bounded queue" is a
    configuration error, not a default.
    """

    def __init__(self, max_items: Optional[int] = 64,
                 max_bytes: Optional[int] = None) -> None:
        if max_items is None and max_bytes is None:
            raise ConfigurationError(
                "a bounded queue needs max_items and/or max_bytes")
        if max_items is not None and max_items < 1:
            raise ConfigurationError("max_items must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError("max_bytes must be >= 1")
        self.max_items = max_items
        self.max_bytes = max_bytes
        self.stats = QueueStats()
        self._items: deque = deque()
        self._bytes = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._warned_unsized = False

    # -- internals ---------------------------------------------------------

    def _size_of(self, item) -> int:
        """Payload bytes one item buffers.

        ``nbytes`` when the item exposes it (chunks, chunk/shm
        descriptors, ndarrays), else derived from ``(shape, dtype)``
        (bare descriptor tuples).  An item sized neither way counts as
        zero and — when a byte bound is configured — warns once per
        queue: silently unbounded byte backpressure is the historical
        bug this closes.
        """
        nbytes = getattr(item, "nbytes", None)
        if nbytes is not None:
            return int(nbytes)
        shape = getattr(item, "shape", None)
        dtype = getattr(item, "dtype", None)
        if shape is not None and dtype is not None:
            try:
                return int(np.prod(shape, dtype=np.int64)
                           * np.dtype(dtype).itemsize)
            except (TypeError, ValueError):
                pass
        if self.max_bytes is not None and not self._warned_unsized:
            self._warned_unsized = True
            warnings.warn(
                f"queue item of type {type(item).__name__} exposes "
                f"neither nbytes nor (shape, dtype); byte "
                f"backpressure cannot account for it",
                RuntimeWarning, stacklevel=3)
        return 0

    def _has_space(self, nbytes: int) -> bool:
        if self.max_items is not None and len(self._items) >= self.max_items:
            return False
        if (self.max_bytes is not None and self._items
                and self._bytes + nbytes > self.max_bytes):
            return False
        return True

    # -- producer side -----------------------------------------------------

    def put(self, item) -> None:
        """Enqueue, blocking while the queue is full (backpressure).

        Raises :class:`~repro.errors.QueueClosedError` when the queue
        is (or becomes) closed — including for a producer already
        blocked in the backpressure wait when :meth:`close` lands: the
        close wakes it and it fails cleanly instead of blocking
        forever on space no consumer will ever free.
        """
        nbytes = self._size_of(item)
        with self._not_full:
            if self._closed:
                raise QueueClosedError("queue is closed")
            if not self._has_space(nbytes):
                self.stats.blocked_puts += 1
                while not self._has_space(nbytes):
                    if self._closed:
                        raise QueueClosedError("queue is closed")
                    self._not_full.wait()
            self._items.append(item)
            self._bytes += nbytes
            self.stats.total_put += 1
            self.stats.peak_depth = max(self.stats.peak_depth,
                                        len(self._items))
            self.stats.peak_bytes = max(self.stats.peak_bytes,
                                        self._bytes)
            self._not_empty.notify()

    def close(self) -> None:
        """No further ``put``; consumers drain then receive ``None``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side -----------------------------------------------------

    def get(self, timeout: Optional[float] = None):
        """Dequeue the oldest item, blocking while empty.

        Returns ``None`` once the queue is closed and drained (or when
        ``timeout`` expires first).
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            item = self._items.popleft()
            self._bytes -= self._size_of(item)
            self.stats.total_got += 1
            self._not_full.notify()
            return item

    def drain(self, timeout: Optional[float] = None) -> list:
        """Dequeue *everything* buffered in one lock acquisition.

        Blocks like :meth:`get` while empty; returns ``[]`` once the
        queue is closed and drained (or on ``timeout``).  Consumers
        that can process bursts amortise the per-item lock/notify
        cost — the streaming executor's drain loop uses this.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return []
                if not self._not_empty.wait(timeout=timeout):
                    return []
            items = list(self._items)
            self._items.clear()
            self._bytes = 0
            self.stats.total_got += len(items)
            self._not_full.notify_all()
            return items

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def buffered_bytes(self) -> int:
        """Payload bytes currently buffered."""
        with self._lock:
            return self._bytes

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed
