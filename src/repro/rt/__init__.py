"""Streaming runtime: the firmware-shaped, op-counted kernels."""

from repro.rt.detectors import (
    StreamingBeatProcessor,
    StreamingIcgConditioner,
    StreamingPanTompkins,
)
from repro.rt.fixedpoint import (
    Q15,
    Q31,
    from_fixed,
    quantize,
    saturating_add,
    saturating_multiply,
    to_fixed,
)
from repro.rt.opcount import OpCounts
from repro.rt.ringbuffer import RingBuffer
from repro.rt.streaming import (
    MovingWindowIntegrator,
    StreamingBiquadCascade,
    StreamingDerivative,
    StreamingExtreme,
    StreamingFir,
    StreamingMorphologyBaseline,
    StreamingSquare,
)

__all__ = [
    "RingBuffer", "OpCounts",
    "to_fixed", "from_fixed", "quantize", "saturating_add",
    "saturating_multiply", "Q15", "Q31",
    "StreamingFir", "StreamingBiquadCascade", "MovingWindowIntegrator",
    "StreamingExtreme", "StreamingMorphologyBaseline",
    "StreamingDerivative", "StreamingSquare",
    "StreamingPanTompkins", "StreamingIcgConditioner",
    "StreamingBeatProcessor",
]
