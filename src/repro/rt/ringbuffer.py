"""Fixed-capacity ring buffer — the firmware's working memory.

The STM32L151 has 48 KB of RAM; every streaming stage works on bounded
history.  This buffer is the single shared primitive: O(1) push,
O(1) random access into the retained window, and explicit failure on
over-reads (firmware bugs should crash tests, not silently wrap).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SignalError

__all__ = ["RingBuffer"]


class RingBuffer:
    """Ring buffer over float samples.

    Parameters
    ----------
    capacity:
        Maximum number of retained samples (> 0).
    """

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, (int, np.integer)) or capacity < 1:
            raise ConfigurationError(
                f"capacity must be a positive integer, got {capacity!r}")
        self._data = np.zeros(int(capacity))
        self._capacity = int(capacity)
        self._write = 0          # next write slot
        self._count = 0          # valid samples
        self._total = 0          # samples ever pushed

    @property
    def capacity(self) -> int:
        """Maximum retained samples."""
        return self._capacity

    @property
    def total_pushed(self) -> int:
        """Samples pushed over the buffer's lifetime."""
        return self._total

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        """True once the buffer has wrapped at least once."""
        return self._count == self._capacity

    def push(self, value: float) -> None:
        """Append one sample, evicting the oldest when full."""
        self._data[self._write] = float(value)
        self._write = (self._write + 1) % self._capacity
        self._count = min(self._count + 1, self._capacity)
        self._total += 1

    def extend(self, values) -> None:
        """Append many samples (oldest-first)."""
        for value in np.asarray(values, dtype=float).ravel():
            self.push(value)

    def recent(self, n: int) -> np.ndarray:
        """The last ``n`` samples, oldest-first.

        Raises :class:`SignalError` if fewer than ``n`` samples are
        retained.
        """
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if n > self._count:
            raise SignalError(
                f"requested {n} samples but only {self._count} retained")
        if n == 0:
            return np.empty(0)
        start = (self._write - n) % self._capacity
        if start + n <= self._capacity:
            return self._data[start:start + n].copy()
        head = self._data[start:]
        tail = self._data[: n - head.size]
        return np.concatenate([head, tail])

    def __getitem__(self, age: int) -> float:
        """Sample by age: ``buffer[0]`` is the newest, ``buffer[1]`` the
        one before, ...  Raises on ages beyond the retained window."""
        if not isinstance(age, (int, np.integer)):
            raise ConfigurationError("age must be an integer")
        if age < 0 or age >= self._count:
            raise SignalError(
                f"age {age} outside retained window of {self._count}")
        return float(self._data[(self._write - 1 - age) % self._capacity])

    def clear(self) -> None:
        """Drop all retained samples (lifetime counter is kept)."""
        self._count = 0
        self._write = 0
