"""Causal (streaming) detectors: Pan-Tompkins and the beat processor.

The offline detectors in :mod:`repro.ecg`/:mod:`repro.icg` are the
reference; these streaming forms mirror what fits in an ISR-driven
firmware:

* :class:`StreamingPanTompkins` — per-sample thresholding on the
  causal band-pass -> derivative -> square -> MWI chain, with adaptive
  signal/noise estimates and a refractory period.  Detected R peaks
  are reported in *input* time (chain delays compensated).
* :class:`StreamingBeatProcessor` — buffers the conditioned ICG and,
  whenever a new R peak confirms a completed beat, runs the
  characteristic-point detection on that beat window.  Real firmware
  works the same way: per-beat batch analysis over a bounded buffer,
  amortised across the beat's samples.
"""

from __future__ import annotations

import numpy as np

from repro.dsp import iir as _iir
from repro.errors import ConfigurationError, DetectionError
from repro.icg.points import PointConfig, detect_beat_points
from repro.rt.opcount import OpCounts
from repro.rt.ringbuffer import RingBuffer
from repro.rt.streaming import (
    MovingWindowIntegrator,
    StreamingBiquadCascade,
    StreamingDerivative,
    StreamingSquare,
)

__all__ = ["StreamingPanTompkins", "StreamingBeatProcessor",
           "StreamingIcgConditioner"]


class StreamingPanTompkins:
    """Sample-at-a-time QRS detector.

    Call :meth:`process` once per ECG sample; it returns the R-peak
    index (in input-sample time) when a QRS is confirmed, else None.
    Confirmation lags the actual R peak by roughly the chain delay plus
    the peak-confirmation window — inherent to causal detection.
    """

    def __init__(self, fs: float) -> None:
        if fs < 60.0:
            raise ConfigurationError("needs fs >= 60 Hz")
        self.fs = float(fs)
        self._bandpass = StreamingBiquadCascade(
            _iir.butter_bandpass(2, 5.0, 15.0, self.fs))
        self._derivative = StreamingDerivative()
        self._square = StreamingSquare()
        self._mwi = MovingWindowIntegrator(int(round(0.150 * self.fs)))
        self._spk = 0.0
        self._npk = 0.0
        self._threshold = 0.0
        self._index = 0
        self._last_qrs = -10**9
        self._refractory = int(round(0.200 * self.fs))
        self._prev = (0.0, 0.0)  # last two MWI values for peak test
        self._learning = int(round(2.0 * self.fs))
        self._raw = RingBuffer(int(round(0.400 * self.fs)))
        #: Total delay from input to MWI output.
        self.chain_delay = (self._bandpass.delay_samples
                            + self._derivative.delay_samples
                            + self._mwi.delay_samples)

    def process(self, sample: float):
        """Consume one ECG sample; return a confirmed R index or None."""
        self._raw.push(sample)
        mwi = self._mwi.process(self._square.process(
            self._derivative.process(self._bandpass.process(sample))))
        detected = None
        prev2, prev1 = self._prev
        is_peak = prev1 > prev2 and prev1 >= mwi
        peak_index = self._index - 1
        if self._index < self._learning:
            # Learning phase: grow the initial estimates.
            self._spk = max(self._spk, 0.4 * mwi)
            self._npk = 0.9 * self._npk + 0.1 * 0.5 * mwi
            self._threshold = self._npk + 0.25 * (self._spk - self._npk)
        elif is_peak:
            if (prev1 > self._threshold
                    and peak_index - self._last_qrs > self._refractory):
                self._spk = 0.125 * prev1 + 0.875 * self._spk
                self._last_qrs = peak_index
                detected = self._refine(peak_index)
            else:
                self._npk = 0.125 * prev1 + 0.875 * self._npk
            self._threshold = self._npk + 0.25 * (self._spk - self._npk)
        self._prev = (prev1, mwi)
        self._index += 1
        return detected

    def _refine(self, mwi_peak_index: int) -> int:
        """Map an MWI peak to the raw-input R sample: compensate the
        chain delay, then snap to the local max of the buffered input."""
        estimate = mwi_peak_index - int(round(self.chain_delay))
        available = len(self._raw)
        half = int(round(0.060 * self.fs))
        newest = self._index  # index of the next input sample
        # Ages of the search window in the raw buffer.
        lo_age = min(available - 1, newest - 1 - (estimate - half))
        hi_age = max(0, newest - 1 - (estimate + half))
        if lo_age <= hi_age:
            return max(estimate, 0)
        window = np.array([self._raw[a] for a in range(hi_age, lo_age + 1)])
        # window is newest-first; convert argmax to an input index.
        best_age = hi_age + int(np.argmax(window))
        return newest - 1 - best_age

    def ops_per_sample(self) -> OpCounts:
        chain = (self._bandpass.ops_per_sample()
                 + self._derivative.ops_per_sample()
                 + self._square.ops_per_sample()
                 + self._mwi.ops_per_sample())
        thresholding = OpCounts(cmp=4, add=3, mul=2, load=5, store=3,
                                branch=3)
        return chain + thresholding


class StreamingIcgConditioner:
    """Causal ICG chain: first difference, 20 Hz low-pass, 0.8 Hz
    high-pass."""

    def __init__(self, fs: float, lowpass_hz: float = 20.0,
                 highpass_hz: float = 0.8) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        self.fs = float(fs)
        self._lowpass = StreamingBiquadCascade(
            _iir.butter_lowpass(4, lowpass_hz, self.fs))
        self._highpass = StreamingBiquadCascade(
            _iir.butter_highpass(2, highpass_hz, self.fs))
        self._previous_z = None
        #: Effective landmark delay of the causal chain.  The chain is
        #: far from linear-phase, so different landmarks experience
        #: different delays; the value is calibrated so that the *B
        #: point* — the landmark PEP hinges on — aligns with the offline
        #: zero-phase reference (see ``_estimate_delay``).
        self.delay_samples = self._estimate_delay()

    def _estimate_delay(self) -> float:
        """Calibrate the beat-window delay on a canonical beat.

        A clean synthetic beat is pushed through both the causal chain
        and the offline zero-phase chain; the shift between the two
        *detected B points* is the delay the firmware must compensate
        when mapping R-peak times into ICG-stream time.
        """
        # Calibration-only dependencies; imported here to keep the
        # module graph of the runtime core minimal.
        from repro.icg.preprocessing import IcgFilterConfig, icg_from_impedance
        from repro.synth.icg_model import integrate_to_impedance, synthesize_icg

        fs = self.fs
        icg_true, _ = synthesize_icg(np.array([1.0]), 0.10, 0.30, 1.0,
                                     3.0, fs)
        z = integrate_to_impedance(icg_true, fs, 100.0)

        lowpass = StreamingBiquadCascade(self._lowpass.sos)
        highpass = StreamingBiquadCascade(self._highpass.sos)
        causal = np.empty(z.size)
        previous = z[0]
        for i, value in enumerate(z):
            raw = -(value - previous) * fs
            previous = value
            causal[i] = highpass.process(lowpass.process(raw))
        offline = icg_from_impedance(z, fs, IcgFilterConfig())

        r_index = int(1.0 * fs)
        window_stop = r_index + int(0.9 * fs)
        causal_points = detect_beat_points(causal, fs, r_index, window_stop)
        offline_points = detect_beat_points(offline, fs, r_index,
                                            window_stop)
        return float(causal_points.b_index - offline_points.b_index)

    def process(self, z_sample: float) -> float:
        """Consume one impedance sample, emit conditioned ICG."""
        if self._previous_z is None:
            self._previous_z = float(z_sample)
        icg_raw = -(float(z_sample) - self._previous_z) * self.fs
        self._previous_z = float(z_sample)
        return self._highpass.process(self._lowpass.process(icg_raw))

    def ops_per_sample(self) -> OpCounts:
        return (OpCounts(add=1, mul=1, load=2, store=1)
                + self._lowpass.ops_per_sample()
                + self._highpass.ops_per_sample())


class StreamingBeatProcessor:
    """Beat-triggered ICG analysis over a bounded history buffer.

    Feed conditioned ICG samples with :meth:`push_icg`; announce
    confirmed R peaks with :meth:`on_r_peak`.  Each completed beat is
    analysed with the offline point detector over the buffered window —
    per-beat batch processing, exactly how the firmware amortises the
    expensive landmark search.
    """

    def __init__(self, fs: float, buffer_s: float = 4.0,
                 config: PointConfig = None) -> None:
        if fs <= 0:
            raise ConfigurationError("fs must be positive")
        self.fs = float(fs)
        self.config = config or PointConfig()
        self._buffer = RingBuffer(int(round(buffer_s * fs)))
        self._pushed = 0
        self._previous_r = None
        self._pending: list = []   # (r_start, r_stop) in ICG-stream time
        self.beats: list = []      # (points, r_index, next_r_index)
        self.failures: list = []

    def push_icg(self, sample: float) -> None:
        """Store one conditioned ICG sample and analyse any beat whose
        window is now fully buffered."""
        self._buffer.push(sample)
        self._pushed += 1
        while self._pending and self._pending[0][1] < self._pushed:
            r_start, r_stop = self._pending.pop(0)
            self._analyse(r_start, r_stop)

    def on_r_peak(self, r_index: int) -> None:
        """Notify the processor that an R peak was confirmed at
        ``r_index`` (ICG-stream time).  Queues the beat it closes;
        analysis happens once all its samples have been pushed."""
        if r_index < 0:
            raise ConfigurationError("r_index must be >= 0")
        if self._previous_r is not None and r_index > self._previous_r:
            self._pending.append((self._previous_r, r_index))
        self._previous_r = r_index

    def _analyse(self, r_start: int, r_stop: int) -> None:
        oldest_retained = self._pushed - len(self._buffer)
        if r_start < oldest_retained:
            self.failures.append((r_start, "beat fell out of the buffer"))
            return
        window = self._buffer.recent(self._pushed - r_start)
        beat = window[: r_stop - r_start + 1]
        try:
            points = detect_beat_points(beat, self.fs, 0, beat.size,
                                        self.config)
        except DetectionError as exc:
            self.failures.append((r_start, str(exc)))
            return
        self.beats.append((points, r_start, r_stop))

    def ops_per_beat_sample(self) -> OpCounts:
        """Amortised per-sample cost of the beat analysis.

        Dominated by the three Savitzky-Golay derivative filters
        (11-tap each) plus the searches; every input sample belongs to
        exactly one beat, so the per-beat work divided by the beat
        length is a per-sample constant.
        """
        savgol = OpCounts(mac=3 * 11, load=3 * 22, store=3, branch=3 * 11)
        searches = OpCounts(cmp=9, add=6, mul=3, load=14, store=3,
                            branch=8)
        return savgol + searches
