"""Causal, sample-at-a-time DSP kernels with operation counting.

These are the firmware counterparts of the offline blocks in
:mod:`repro.dsp`: each processes one sample per call (the way an ISR
consumes ADC data) and reports its per-sample arithmetic as
:class:`~repro.rt.opcount.OpCounts` so the MCU model can price the
whole chain.

Causal filters delay; every kernel exposes ``delay_samples`` so
downstream beat timing can be compensated.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rt.opcount import OpCounts
from repro.rt.ringbuffer import RingBuffer

__all__ = [
    "StreamingFir",
    "StreamingBiquadCascade",
    "MovingWindowIntegrator",
    "StreamingExtreme",
    "StreamingMorphologyBaseline",
    "StreamingDerivative",
    "StreamingSquare",
]


class StreamingFir:
    """Causal direct-form FIR, one multiply-accumulate per tap."""

    def __init__(self, taps) -> None:
        taps = np.asarray(taps, dtype=float)
        if taps.ndim != 1 or taps.size == 0:
            raise ConfigurationError("taps must be a non-empty 1-D array")
        self.taps = taps
        self._history = RingBuffer(taps.size)
        for _ in range(taps.size):
            self._history.push(0.0)

    @property
    def delay_samples(self) -> float:
        """Group delay of the linear-phase filter."""
        return (self.taps.size - 1) / 2.0

    def process(self, sample: float) -> float:
        """Consume one input sample, emit one output sample."""
        self._history.push(sample)
        window = self._history.recent(self.taps.size)
        return float(np.dot(window, self.taps[::-1]))

    def ops_per_sample(self) -> OpCounts:
        n = self.taps.size
        return OpCounts(mac=n, load=2 * n + 1, store=1, branch=n)


class StreamingBiquadCascade:
    """Causal SOS cascade (direct form II transposed), per sample."""

    def __init__(self, sos) -> None:
        sos = np.asarray(sos, dtype=float)
        if sos.ndim != 2 or sos.shape[1] != 6:
            raise ConfigurationError("sos must have shape (n, 6)")
        if not np.allclose(sos[:, 3], 1.0):
            raise ConfigurationError("sections must be normalised (a0=1)")
        self.sos = sos
        self._state = np.zeros((sos.shape[0], 2))

    @property
    def n_sections(self) -> int:
        """Number of biquad sections."""
        return self.sos.shape[0]

    @property
    def delay_samples(self) -> float:
        """Approximate low-frequency group delay (phase slope at DC is
        filter-specific; callers should calibrate for their band)."""
        return 1.0 * self.n_sections

    def process(self, sample: float) -> float:
        """Consume one sample through all sections."""
        x = float(sample)
        for s in range(self.n_sections):
            b0, b1, b2, _, a1, a2 = self.sos[s]
            w0, w1 = self._state[s]
            y = b0 * x + w0
            self._state[s, 0] = b1 * x - a1 * y + w1
            self._state[s, 1] = b2 * x - a2 * y
            x = y
        return x

    def ops_per_sample(self) -> OpCounts:
        n = self.n_sections
        # Per section: 5 multiplies folded as 1 mul + 4 MAC, 2 state
        # loads + 2 stores.
        return OpCounts(mac=4 * n, mul=n, load=4 * n, store=2 * n,
                        branch=n)


class MovingWindowIntegrator:
    """Running mean over a fixed window (Pan-Tompkins MWI), O(1)."""

    def __init__(self, width: int) -> None:
        if not isinstance(width, (int, np.integer)) or width < 1:
            raise ConfigurationError(
                f"width must be a positive integer, got {width!r}")
        self._history = RingBuffer(int(width))
        for _ in range(int(width)):
            self._history.push(0.0)
        self._sum = 0.0
        self.width = int(width)

    @property
    def delay_samples(self) -> float:
        """Centre-of-window delay."""
        return (self.width - 1) / 2.0

    def process(self, sample: float) -> float:
        """Consume one sample, emit the window mean."""
        oldest = self._history[self.width - 1]
        self._sum += float(sample) - oldest
        self._history.push(sample)
        return self._sum / self.width

    def ops_per_sample(self) -> OpCounts:
        return OpCounts(add=2, div=1, load=2, store=2)


class StreamingExtreme:
    """Sliding-window min or max in amortised O(1) (Lemire's monotonic
    wedge) — the firmware form of grey-scale erosion/dilation."""

    def __init__(self, width: int, mode: str) -> None:
        if not isinstance(width, (int, np.integer)) or width < 1:
            raise ConfigurationError(
                f"width must be a positive integer, got {width!r}")
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        self.width = int(width)
        self.mode = mode
        self._wedge: deque = deque()   # (index, value), monotonic
        self._index = 0

    @property
    def delay_samples(self) -> float:
        """The emitted extreme corresponds to the window centre."""
        return (self.width - 1) / 2.0

    def process(self, sample: float) -> float:
        """Consume one sample, emit the window extreme."""
        value = float(sample)
        keep = ((lambda old: old <= value) if self.mode == "max"
                else (lambda old: old >= value))
        while self._wedge and keep(self._wedge[-1][1]):
            self._wedge.pop()
        self._wedge.append((self._index, value))
        if self._wedge[0][0] <= self._index - self.width:
            self._wedge.popleft()
        self._index += 1
        return self._wedge[0][1]

    def ops_per_sample(self) -> OpCounts:
        # Amortised: each sample enters and leaves the wedge once.
        return OpCounts(cmp=3, load=3, store=2, branch=3)


class StreamingMorphologyBaseline:
    """Causal opening-then-closing baseline estimator.

    The streaming equivalent of
    :func:`repro.dsp.morphology.estimate_baseline`: erosion -> dilation
    (opening) with the first element, dilation -> erosion (closing)
    with the second.  Total delay is the sum of the four window
    centres; the owner subtracts the delayed input to get the corrected
    signal.
    """

    def __init__(self, first_width: int, second_width: int) -> None:
        self._stages = [
            StreamingExtreme(first_width, "min"),
            StreamingExtreme(first_width, "max"),
            StreamingExtreme(second_width, "max"),
            StreamingExtreme(second_width, "min"),
        ]

    @property
    def delay_samples(self) -> float:
        """Cumulative centre delay of the four stages."""
        return sum(stage.delay_samples for stage in self._stages)

    def process(self, sample: float) -> float:
        """Consume one raw sample, emit the baseline estimate."""
        value = float(sample)
        for stage in self._stages:
            value = stage.process(value)
        return value

    def ops_per_sample(self) -> OpCounts:
        total = OpCounts()
        for stage in self._stages:
            total = total + stage.ops_per_sample()
        return total


class StreamingDerivative:
    """Pan-Tompkins five-point derivative, causal."""

    def __init__(self, fs: Optional[float] = None) -> None:
        self._history = RingBuffer(5)
        for _ in range(5):
            self._history.push(0.0)
        del fs  # scale-free (the squared stage normalises anyway)

    @property
    def delay_samples(self) -> float:
        """Centre of the five-point stencil."""
        return 2.0

    def process(self, sample: float) -> float:
        """Consume one sample, emit ``(2x[n]+x[n-1]-x[n-3]-2x[n-4])/8``."""
        self._history.push(sample)
        h = self._history
        return (2.0 * h[0] + h[1] - h[3] - 2.0 * h[4]) / 8.0

    def ops_per_sample(self) -> OpCounts:
        return OpCounts(mac=2, add=2, mul=1, load=4, store=1)


class StreamingSquare:
    """Point-wise squaring (Pan-Tompkins energy stage)."""

    delay_samples = 0.0

    def process(self, sample: float) -> float:
        """Emit ``sample**2``."""
        return float(sample) * float(sample)

    def ops_per_sample(self) -> OpCounts:
        return OpCounts(mul=1, load=1, store=1)
