"""Operation counting for the CPU duty-cycle claim.

The paper states the full algorithm suite needs 40-50 % of the STM32's
duty cycle.  To reproduce that number honestly we count, per sample,
the arithmetic every streaming kernel performs, and price the counts
through a Cortex-M3 cycle model (:mod:`repro.device.mcu`).  Kernels in
:mod:`repro.rt.streaming` each report their own
:class:`OpCounts`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounts"]


@dataclass(frozen=True)
class OpCounts:
    """Arithmetic/memory operation tallies (per sample unless noted).

    ``mac`` is a fused multiply-accumulate (single instruction on
    Cortex-M3: MLA); ``load``/``store`` are 32-bit data moves;
    ``branch`` counts taken branches including loop back-edges.
    """

    mac: float = 0.0
    mul: float = 0.0
    add: float = 0.0
    div: float = 0.0
    cmp: float = 0.0
    abs: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    sqrt: float = 0.0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        if not isinstance(other, OpCounts):
            return NotImplemented
        return OpCounts(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def scaled(self, factor: float) -> "OpCounts":
        """Counts multiplied by a rate factor (e.g. per-beat work
        amortised over the samples of one beat)."""
        return OpCounts(**{
            f.name: getattr(self, f.name) * factor for f in fields(self)
        })

    def total(self) -> float:
        """Raw operation count (unweighted)."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict:
        """Plain-dict view for reporting."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
