"""Q-format fixed-point helpers.

The STM32L151 (Cortex-M3) has no FPU: production firmware runs the
filter chains in Q15/Q31 arithmetic.  These helpers quantize
coefficients and signals to Q formats with saturation, so tests can
bound the accuracy loss the integer implementation would introduce and
the MCU cost model can justify charging integer-op prices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "to_fixed",
    "from_fixed",
    "quantize",
    "saturating_add",
    "saturating_multiply",
    "Q15",
    "Q31",
]

Q15 = 15
Q31 = 31


def _check_q(q_bits: int) -> int:
    if not isinstance(q_bits, (int, np.integer)) or not 1 <= q_bits <= 62:
        raise ConfigurationError(
            f"Q format must be an integer in [1, 62], got {q_bits!r}")
    return int(q_bits)


def _limits(q_bits: int) -> tuple:
    max_int = 2**q_bits - 1
    min_int = -(2**q_bits)
    return min_int, max_int


def to_fixed(value, q_bits: int = Q15) -> np.ndarray:
    """Float -> Q(q_bits) integer with rounding and saturation.

    Representable range is ``[-1, 1 - 2^-q)``; values outside saturate
    exactly as the DSP instructions do.
    """
    q_bits = _check_q(q_bits)
    scaled = np.round(np.asarray(value, dtype=float) * 2.0**q_bits)
    min_int, max_int = _limits(q_bits)
    return np.clip(scaled, min_int, max_int).astype(np.int64)


def from_fixed(value, q_bits: int = Q15) -> np.ndarray:
    """Q(q_bits) integer -> float."""
    q_bits = _check_q(q_bits)
    return np.asarray(value, dtype=np.int64).astype(float) / 2.0**q_bits


def quantize(value, q_bits: int = Q15) -> np.ndarray:
    """Round-trip a float through the Q format (quantization model)."""
    return from_fixed(to_fixed(value, q_bits), q_bits)


def saturating_add(a: int, b: int, q_bits: int = Q15) -> int:
    """Integer addition with Q-format saturation (QADD semantics)."""
    q_bits = _check_q(q_bits)
    min_int, max_int = _limits(q_bits)
    return int(np.clip(int(a) + int(b), min_int, max_int))


def saturating_multiply(a: int, b: int, q_bits: int = Q15) -> int:
    """Fixed-point multiply with rounding and saturation.

    ``(a * b) >> q`` with round-half-up, then saturate — the SMULxx +
    shift idiom of Cortex-M DSP code.
    """
    q_bits = _check_q(q_bits)
    min_int, max_int = _limits(q_bits)
    product = int(a) * int(b)
    rounded = (product + (1 << (q_bits - 1))) >> q_bits
    return int(np.clip(rounded, min_int, max_int))
