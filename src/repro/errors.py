"""Exception hierarchy for the :mod:`repro` package.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from numpy, ...) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SignalError",
    "DetectionError",
    "HardwareError",
    "ProtocolError",
    "JournalError",
    "ArchiveError",
    "PoisonJobError",
    "QueueClosedError",
    "SupervisorError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters.

    Raised eagerly at construction time (filters with out-of-range cut-off
    frequencies, ADCs with non-positive resolution, subjects with
    non-physiological vitals, ...), never lazily at use time.
    """


class SignalError(ReproError):
    """An input signal does not satisfy a routine's requirements.

    Typical causes: empty arrays, wrong dimensionality, signals shorter
    than a filter's impulse response, or non-finite samples where finite
    data is required.
    """


class DetectionError(ReproError):
    """A detector could not produce a result on an otherwise valid signal.

    Example: the ICG B-point search is asked to analyse a beat whose
    C point sits at the very first sample, leaving no room for the
    backward searches the algorithm performs.
    """


class HardwareError(ReproError):
    """A simulated hardware component was driven outside its envelope.

    Example: requesting an ADC sampling rate outside the supported
    125 Hz - 16 kHz range of the paper's acquisition system, or drawing
    current from an empty battery.
    """


class ProtocolError(ReproError):
    """The experimental protocol was violated (wrong position ids,
    missing recordings for a requested frequency, ...)."""


class JournalError(ReproError):
    """A durable-ingest journal was misused or found damaged.

    Raised when an append would violate the journal's per-session
    contiguity (a sequence gap, or writing to a session the scan marked
    damaged) and when a journal directory cannot be interpreted at all.
    Recoverable damage — a torn tail after a crash, a record failing
    its CRC — is *not* raised during a scan: it is reported in the scan
    result so recovery can quarantine exactly the affected sessions and
    carry on with the rest.
    """


class ArchiveError(ReproError):
    """A cold-tier session archive is damaged or unreadable.

    Raised when an archive file fails its integrity checks (wrong
    schema, truncated blob, checksum mismatch, a session id the index
    does not know) — rehydration refuses to fabricate data from a
    container it cannot fully verify, since the archive is typically
    the *only* remaining copy once the journal segments were GC'd.
    """


class QueueClosedError(ReproError):
    """A producer tried to ``put`` into a closed work queue.

    Raised both by a ``put`` that finds the queue already closed and by
    one *blocked in backpressure wait* when the queue closes underneath
    it — the shutdown path a long-running service takes: closing the
    queue must wake every blocked producer with a clean error, never
    leave it waiting forever for space that will not come.
    """


class SupervisorError(ReproError):
    """A session supervisor was driven through an illegal transition.

    The serve-daemon session state machine (ACCEPTING → DRAINING →
    FINALIZING → DONE / QUARANTINED) only permits the edges its table
    declares; asking for any other edge — finalizing a session that
    never drained, reviving a DONE session — is a programming error in
    the caller and raises eagerly instead of corrupting the session's
    lifecycle bookkeeping.
    """


class PoisonJobError(ReproError):
    """A job repeatedly killed its worker and was quarantined as poison.

    Raised only when a caller *resolves* a poison entry
    (:func:`repro.core.executor.raise_if_poison`); the fan-out itself
    never raises this — a poisoned job comes back as a structured
    :class:`~repro.core.executor.PoisonJob` element so the surviving
    jobs' results are still delivered.
    """
