"""Subject models and the experiment cohort.

The paper evaluates on five male subjects.  Their bodies, hemodynamics
and — crucially for a touch device — skin/contact properties differ;
:class:`SubjectProfile` captures exactly the attributes those
differences act through, and :func:`default_cohort` provides five
profiles whose *structure* of variation mirrors the paper's tables
(subject 3 correlates best everywhere, subjects 4-5 worst, subject 5
degrading sharply with arms hanging).

Ground-truth hemodynamics (PEP, LVET, dZ/dt max) are per-subject
constants with small beat-to-beat jitter applied at synthesis time, so
every detector result can be scored against known truth.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.bioimpedance.tissue import BodyGeometry
from repro.errors import ConfigurationError
from repro.synth.rr import RRModel

__all__ = ["SubjectProfile", "default_cohort", "random_cohort"]


@dataclass(frozen=True)
class SubjectProfile:
    """A synthetic study participant.

    Parameters
    ----------
    subject_id:
        1-based identifier, matching the paper's "Subject 1..5".
    age_years, height_m, weight_kg, body_fat_fraction:
        Demographics / anthropometrics (drive the impedance pathway
        scaling through :class:`~repro.bioimpedance.tissue.BodyGeometry`).
    hr_bpm:
        Resting heart rate (ground truth for the Fig 9 HR bars).
    pep_s, lvet_s:
        Ground-truth systolic time intervals (Fig 9 PEP/LVET bars).
    dzdt_max_ohm_per_s:
        Ground-truth ICG C-wave amplitude on the *thoracic* pathway.
    resp_rate_hz:
        Breathing rate.
    contact_quality:
        Fingertip-electrode contact quality in (0, 1]; scales the dry
        electrode model and the coupling-noise level of the device.
    position_contact:
        Per-position multipliers on ``contact_quality`` (grip geometry
        changes with arm posture; subject 5's arms-down degradation in
        Table IV is modelled here).
    tremor_z_rms_ohm:
        Baseline motion-artifact RMS injected into the device impedance
        channel at Position 1; positions scale it via
        :data:`~repro.synth.motion.POSITION_TREMOR_LEVELS`.
    pep_jitter_s, lvet_jitter_s, amp_jitter_fraction:
        Beat-to-beat standard deviations of the ground-truth intervals
        and amplitude.
    seed:
        Base RNG seed for everything stochastic about this subject.
    """

    subject_id: int
    age_years: int
    height_m: float
    weight_kg: float
    body_fat_fraction: float
    hr_bpm: float
    pep_s: float
    lvet_s: float
    dzdt_max_ohm_per_s: float = 1.2
    resp_rate_hz: float = 0.25
    contact_quality: float = 0.9
    position_contact: dict = field(
        default_factory=lambda: {1: 1.0, 2: 1.0, 3: 1.0})
    tremor_z_rms_ohm: float = 0.0025
    pep_jitter_s: float = 0.0025
    lvet_jitter_s: float = 0.005
    amp_jitter_fraction: float = 0.04
    seed: int = 0

    def __post_init__(self) -> None:
        if self.subject_id < 1:
            raise ConfigurationError("subject_id must be >= 1")
        if not 0.05 <= self.pep_s <= 0.25:
            raise ConfigurationError(
                f"PEP must be in [0.05, 0.25] s, got {self.pep_s}")
        if not 0.15 <= self.lvet_s <= 0.45:
            raise ConfigurationError(
                f"LVET must be in [0.15, 0.45] s, got {self.lvet_s}")
        if self.dzdt_max_ohm_per_s <= 0:
            raise ConfigurationError("dZ/dt max must be positive")
        if not 0.0 < self.contact_quality <= 1.0:
            raise ConfigurationError("contact quality must be in (0, 1]")
        missing = {1, 2, 3} - set(self.position_contact)
        if missing:
            raise ConfigurationError(
                f"position_contact must cover positions 1-3, missing "
                f"{sorted(missing)}")
        # BodyGeometry validates the anthropometrics.
        self.geometry  # noqa: B018 - construction is the validation

    @property
    def geometry(self) -> BodyGeometry:
        """Anthropometrics as a pathway-compatible geometry."""
        return BodyGeometry(self.height_m, self.weight_kg,
                            self.body_fat_fraction)

    def rr_model(self) -> RRModel:
        """Heart-rate model bound to this subject's vitals."""
        return RRModel(mean_hr_bpm=self.hr_bpm,
                       respiration_rate_hz=self.resp_rate_hz)

    def effective_contact(self, position: int) -> float:
        """Contact quality in a given protocol position."""
        if position not in self.position_contact:
            raise ConfigurationError(
                f"unknown position {position}; have "
                f"{sorted(self.position_contact)}")
        return float(np.clip(
            self.contact_quality * self.position_contact[position],
            0.05, 1.0))

    def rng_for(self, *context) -> np.random.Generator:
        """A deterministic RNG derived from the subject seed and any
        printable context (position, frequency, setup...), so every
        recording in the study is reproducible in isolation.

        Uses a stable digest (not Python's salted ``hash``) so runs are
        reproducible across processes.
        """
        text = repr((self.seed, self.subject_id) + context)
        digest = zlib.crc32(text.encode("utf-8"))
        return np.random.default_rng(digest)


def default_cohort() -> list:
    """The five-male-subject cohort of the paper's experiment.

    Values are plausible resting physiology; the *pattern* of contact
    quality mirrors what Tables II-IV imply: one excellent subject
    (S3 > 0.98 everywhere), mid subjects, and two weaker contacts, with
    subject 5 degrading specifically when the arms hang by the sides.
    """
    return [
        SubjectProfile(
            subject_id=1, age_years=27, height_m=1.80, weight_kg=78.0,
            body_fat_fraction=0.18, hr_bpm=63.0, pep_s=0.092, lvet_s=0.301,
            dzdt_max_ohm_per_s=1.25, resp_rate_hz=0.24,
            contact_quality=0.88,
            position_contact={1: 0.93, 2: 1.05, 3: 1.05},
            tremor_z_rms_ohm=0.0026, seed=101),
        SubjectProfile(
            subject_id=2, age_years=33, height_m=1.75, weight_kg=72.0,
            body_fat_fraction=0.20, hr_bpm=68.0, pep_s=0.098, lvet_s=0.289,
            dzdt_max_ohm_per_s=1.15, resp_rate_hz=0.27,
            contact_quality=0.92,
            position_contact={1: 1.0, 2: 1.0, 3: 0.97},
            tremor_z_rms_ohm=0.0022, seed=202),
        SubjectProfile(
            subject_id=3, age_years=29, height_m=1.83, weight_kg=80.0,
            body_fat_fraction=0.16, hr_bpm=57.0, pep_s=0.088, lvet_s=0.312,
            dzdt_max_ohm_per_s=1.40, resp_rate_hz=0.22,
            contact_quality=0.985,
            position_contact={1: 1.0, 2: 1.0, 3: 0.99},
            tremor_z_rms_ohm=0.0012, seed=303),
        SubjectProfile(
            subject_id=4, age_years=46, height_m=1.70, weight_kg=86.0,
            body_fat_fraction=0.27, hr_bpm=73.0, pep_s=0.108, lvet_s=0.276,
            dzdt_max_ohm_per_s=0.95, resp_rate_hz=0.29,
            contact_quality=0.78,
            position_contact={1: 0.96, 2: 1.06, 3: 0.98},
            tremor_z_rms_ohm=0.0034, seed=404),
        SubjectProfile(
            subject_id=5, age_years=51, height_m=1.68, weight_kg=90.0,
            body_fat_fraction=0.30, hr_bpm=76.0, pep_s=0.112, lvet_s=0.268,
            dzdt_max_ohm_per_s=0.90, resp_rate_hz=0.30,
            contact_quality=0.84,
            position_contact={1: 1.0, 2: 0.92, 3: 0.55},
            tremor_z_rms_ohm=0.0032, seed=505),
    ]


def random_cohort(n_subjects: int, rng: np.random.Generator = None) -> list:
    """A synthetic cohort of ``n_subjects`` — the paper's future-work
    "larger number of subjects" study.

    Demographics, hemodynamics and contact properties are drawn from
    plausible adult distributions (male and female builds); systolic
    intervals follow their known HR dependence (LVET shortens with
    faster rates, Weissler's regression).  Subject ids continue from 1.
    """
    if not isinstance(n_subjects, (int, np.integer)) or n_subjects < 1:
        raise ConfigurationError(
            f"n_subjects must be a positive integer, got {n_subjects!r}")
    rng = rng or np.random.default_rng(2016)
    cohort = []
    for sid in range(1, int(n_subjects) + 1):
        height = float(np.clip(rng.normal(1.74, 0.09), 1.50, 2.05))
        bmi = float(np.clip(rng.normal(24.5, 3.5), 18.0, 38.0))
        weight = bmi * height**2
        fat = float(np.clip(rng.normal(0.22, 0.06), 0.08, 0.42))
        hr = float(np.clip(rng.normal(66.0, 9.0), 45.0, 95.0))
        # Weissler: LVET ~ 413 ms - 1.7 ms/bpm (male regression).
        lvet = float(np.clip((413.0 - 1.7 * hr) / 1000.0
                             + rng.normal(0.0, 0.012), 0.20, 0.40))
        pep = float(np.clip(rng.normal(0.100, 0.012), 0.07, 0.16))
        contact = float(np.clip(rng.beta(8.0, 2.0), 0.4, 1.0))
        position_contact = {
            1: float(np.clip(rng.normal(1.0, 0.04), 0.7, 1.1)),
            2: float(np.clip(rng.normal(1.0, 0.05), 0.7, 1.1)),
            3: float(np.clip(rng.normal(0.97, 0.10), 0.4, 1.1)),
        }
        cohort.append(SubjectProfile(
            subject_id=sid,
            age_years=int(np.clip(rng.normal(42, 14), 18, 85)),
            height_m=height,
            weight_kg=float(np.clip(weight, 45.0, 140.0)),
            body_fat_fraction=fat,
            hr_bpm=hr,
            pep_s=pep,
            lvet_s=lvet,
            dzdt_max_ohm_per_s=float(np.clip(rng.normal(1.15, 0.22),
                                             0.5, 2.2)),
            resp_rate_hz=float(np.clip(rng.normal(0.26, 0.04), 0.15,
                                       0.45)),
            contact_quality=contact,
            position_contact=position_contact,
            tremor_z_rms_ohm=float(np.clip(rng.normal(0.0028, 0.0012),
                                           0.0008, 0.008)),
            seed=int(rng.integers(1, 2**31 - 1)),
        ))
    return cohort
