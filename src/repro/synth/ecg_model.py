"""Synthetic ECG generation (Gaussian wave-sum model).

Each beat is a sum of five Gaussian lobes (P, Q, R, S, T) placed
relative to the R peak — the beat-domain formulation of the McSharry
ECGSYN dynamical model.  The T-wave offset follows Bazett scaling
(proportional to sqrt(RR)) so QT shortens at higher heart rates, which
matters for the Carvalho RT-window X-point variant implemented in
:mod:`repro.icg.points`.

Amplitudes are in millivolt, matching a lead-I-like finger measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["WaveSpec", "EcgBeatModel", "synthesize_ecg"]


@dataclass(frozen=True)
class WaveSpec:
    """One Gaussian lobe of the beat template.

    ``offset_s`` is relative to the R peak (negative = earlier);
    ``rr_scaled`` marks waves whose offset stretches with sqrt(RR)
    (the T wave, per Bazett's formula).
    """

    offset_s: float
    amplitude_mv: float
    width_s: float
    rr_scaled: bool = False

    def __post_init__(self) -> None:
        if self.width_s <= 0:
            raise ConfigurationError(
                f"wave width must be positive, got {self.width_s}")


@dataclass(frozen=True)
class EcgBeatModel:
    """Beat template as a tuple of :class:`WaveSpec` lobes.

    The default template is a textbook adult sinus beat.  ``waves`` maps
    wave name to spec so individual lobes can be overridden (e.g. a
    flat-T subject for detector stress tests).
    """

    waves: dict = field(default_factory=lambda: {
        "P": WaveSpec(-0.170, 0.12, 0.022),
        "Q": WaveSpec(-0.028, -0.14, 0.010),
        "R": WaveSpec(0.000, 1.10, 0.011),
        "S": WaveSpec(0.030, -0.26, 0.010),
        "T": WaveSpec(0.310, 0.32, 0.055, rr_scaled=True),
    })

    def __post_init__(self) -> None:
        if "R" not in self.waves:
            raise ConfigurationError("beat template must include an R wave")

    def t_peak_offset(self, rr_s: float) -> float:
        """T-peak offset from the R peak for a beat of period ``rr_s``."""
        spec = self.waves.get("T")
        if spec is None:
            raise ConfigurationError("beat template has no T wave")
        return spec.offset_s * np.sqrt(rr_s / 0.92)  # 0.92 s = 65 bpm ref

    def render(self, time_s: np.ndarray, r_time_s: float,
               rr_s: float) -> np.ndarray:
        """Evaluate one beat's contribution over the given time axis."""
        beat = np.zeros_like(time_s)
        stretch = np.sqrt(rr_s / 0.92)
        for spec in self.waves.values():
            offset = spec.offset_s * (stretch if spec.rr_scaled else 1.0)
            centre = r_time_s + offset
            beat += spec.amplitude_mv * np.exp(
                -((time_s - centre) ** 2) / (2.0 * spec.width_s**2))
        return beat


def synthesize_ecg(beat_times_s, rr_intervals_s, duration_s: float,
                   fs: float, model: EcgBeatModel = None):
    """Render a full ECG from beat times and per-beat RR intervals.

    Parameters
    ----------
    beat_times_s, rr_intervals_s:
        Equal-length arrays: R-peak time and heart period of each beat.
    duration_s, fs:
        Output length and sampling rate.
    model:
        Beat template; defaults to the textbook sinus template.

    Returns
    -------
    (ecg, t_peaks)
        The ECG trace in millivolt and the T-peak times in seconds
        (one per beat) — ground truth for RT-interval logic.
    """
    beat_times_s = np.asarray(beat_times_s, dtype=float)
    rr_intervals_s = np.asarray(rr_intervals_s, dtype=float)
    if beat_times_s.shape != rr_intervals_s.shape:
        raise ConfigurationError(
            "beat_times_s and rr_intervals_s must have equal length")
    if duration_s <= 0 or fs <= 0:
        raise ConfigurationError("duration and fs must be positive")
    model = model or EcgBeatModel()
    n = int(round(duration_s * fs))
    time_s = np.arange(n) / fs
    ecg = np.zeros(n)
    t_peaks = np.empty(beat_times_s.size)
    for i, (r_time, rr) in enumerate(zip(beat_times_s, rr_intervals_s)):
        # Only render over a +-1.2 s window around the beat; Gaussians
        # decay to numerical zero well inside it and rendering stays O(n).
        lo = max(0, int((r_time - 1.2) * fs))
        hi = min(n, int((r_time + 1.2) * fs) + 1)
        if lo >= hi:
            t_peaks[i] = r_time + model.t_peak_offset(rr)
            continue
        ecg[lo:hi] += model.render(time_s[lo:hi], r_time, rr)
        t_peaks[i] = r_time + model.t_peak_offset(rr)
    return ecg, t_peaks
