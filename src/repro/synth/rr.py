"""Beat-to-beat RR interval generation.

Produces physiologically structured heart-period series: respiratory
sinus arrhythmia (RSA) locked to the respiration rate, a ~0.1 Hz Mayer
wave, and broadband beat-to-beat jitter.  Every downstream synthetic
signal (ECG, ICG) is built on the same RR series so the two stay
beat-aligned exactly as they are in the real, simultaneously acquired
recordings of the paper's device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RRModel", "generate_rr_series", "rr_to_beat_times"]


@dataclass(frozen=True)
class RRModel:
    """Parameters of the RR-interval generator.

    Parameters
    ----------
    mean_hr_bpm:
        Mean heart rate in beats per minute (30-220).
    rsa_fraction:
        Peak fractional RR modulation by respiration (typically
        0.02-0.06 at rest).
    mayer_fraction:
        Peak fractional modulation of the ~0.1 Hz baroreflex (Mayer)
        wave.
    jitter_fraction:
        Standard deviation of white beat-to-beat jitter as a fraction
        of the mean RR.
    respiration_rate_hz:
        Respiration frequency driving the RSA component.
    mayer_rate_hz:
        Mayer-wave frequency (canonically 0.1 Hz).
    """

    mean_hr_bpm: float = 65.0
    rsa_fraction: float = 0.03
    mayer_fraction: float = 0.02
    jitter_fraction: float = 0.01
    respiration_rate_hz: float = 0.25
    mayer_rate_hz: float = 0.1

    def __post_init__(self) -> None:
        if not 30.0 <= self.mean_hr_bpm <= 220.0:
            raise ConfigurationError(
                f"mean HR must be in [30, 220] bpm, got {self.mean_hr_bpm}")
        for name in ("rsa_fraction", "mayer_fraction", "jitter_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 0.2:
                raise ConfigurationError(
                    f"{name} must be in [0, 0.2), got {value}")
        if self.respiration_rate_hz <= 0 or self.mayer_rate_hz <= 0:
            raise ConfigurationError("modulation rates must be positive")

    @property
    def mean_rr_s(self) -> float:
        """Mean heart period in seconds."""
        return 60.0 / self.mean_hr_bpm


def generate_rr_series(model: RRModel, n_beats: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Generate ``n_beats`` RR intervals (seconds).

    The modulations are evaluated at the *cumulative* beat times, so
    the RSA component genuinely tracks the respiratory phase instead of
    beat index.
    """
    if n_beats < 1:
        raise ConfigurationError(f"n_beats must be >= 1, got {n_beats}")
    mean_rr = model.mean_rr_s
    phase_resp = rng.uniform(0.0, 2.0 * np.pi)
    phase_mayer = rng.uniform(0.0, 2.0 * np.pi)
    rr = np.empty(n_beats)
    t = 0.0
    for i in range(n_beats):
        modulation = (
            model.rsa_fraction
            * np.sin(2.0 * np.pi * model.respiration_rate_hz * t + phase_resp)
            + model.mayer_fraction
            * np.sin(2.0 * np.pi * model.mayer_rate_hz * t + phase_mayer)
            + model.jitter_fraction * rng.standard_normal()
        )
        # Clip to +-15 % so pathological jitter draws cannot produce
        # non-physiological intervals.
        rr[i] = mean_rr * float(np.clip(1.0 + modulation, 0.85, 1.15))
        t += rr[i]
    return rr


def rr_to_beat_times(rr_intervals, first_beat_s: float = 0.5) -> np.ndarray:
    """Cumulative R-peak times from RR intervals.

    ``first_beat_s`` places the first R peak away from the recording
    edge so filters have context around every annotated beat.
    """
    rr_intervals = np.asarray(rr_intervals, dtype=float)
    if rr_intervals.ndim != 1 or rr_intervals.size == 0:
        raise ConfigurationError("rr_intervals must be a non-empty 1-D array")
    if np.any(rr_intervals <= 0):
        raise ConfigurationError("all RR intervals must be positive")
    if first_beat_s < 0:
        raise ConfigurationError("first beat time must be >= 0")
    times = first_beat_s + np.concatenate([[0.0],
                                           np.cumsum(rr_intervals[:-1])])
    return times
