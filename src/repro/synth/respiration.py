"""Respiration signal and its coupling into impedance and ECG.

Breathing modulates thoracic impedance strongly (air is an insulator:
inspiration raises Z by up to ~1 ohm) and wobbles the ECG baseline
through electrode-tissue geometry changes.  The paper cites the
respiratory artifact band as 0.04-2 Hz; this generator produces a
quasi-periodic waveform inside that band with cycle-to-cycle variability
in both rate and depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RespirationModel", "respiration_wave"]


@dataclass(frozen=True)
class RespirationModel:
    """Parameters of the respiration generator.

    Parameters
    ----------
    rate_hz:
        Mean breathing rate (0.04-2 Hz per the paper's artifact band).
    rate_variability:
        Fractional standard deviation of the cycle-to-cycle rate.
    depth_variability:
        Fractional standard deviation of the per-cycle amplitude.
    ie_ratio:
        Inspiration:expiration time ratio; < 1 skews each cycle the way
        real breathing does (faster inhale, slower exhale).
    """

    rate_hz: float = 0.25
    rate_variability: float = 0.08
    depth_variability: float = 0.10
    ie_ratio: float = 0.7

    def __post_init__(self) -> None:
        if not 0.04 <= self.rate_hz <= 2.0:
            raise ConfigurationError(
                f"respiration rate must be within the paper's 0.04-2 Hz "
                f"band, got {self.rate_hz}")
        if not 0.0 <= self.rate_variability < 0.5:
            raise ConfigurationError("rate variability must be in [0, 0.5)")
        if not 0.0 <= self.depth_variability < 0.5:
            raise ConfigurationError("depth variability must be in [0, 0.5)")
        if not 0.2 <= self.ie_ratio <= 1.5:
            raise ConfigurationError("I:E ratio must be in [0.2, 1.5]")


def respiration_wave(model: RespirationModel, duration_s: float, fs: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Unit-amplitude respiration waveform (positive = inspiration).

    Built cycle by cycle: each breath gets its own period and depth
    draw, and the within-cycle shape is an asymmetric raised cosine
    (inspiration occupying ``ie_ratio / (1 + ie_ratio)`` of the cycle).
    """
    if duration_s <= 0 or fs <= 0:
        raise ConfigurationError("duration and fs must be positive")
    n = int(round(duration_s * fs))
    wave = np.zeros(n)
    t_cursor = 0.0
    mean_period = 1.0 / model.rate_hz
    insp_fraction = model.ie_ratio / (1.0 + model.ie_ratio)
    while t_cursor < duration_s:
        period = mean_period * float(np.clip(
            1.0 + model.rate_variability * rng.standard_normal(), 0.6, 1.6))
        depth = float(np.clip(
            1.0 + model.depth_variability * rng.standard_normal(), 0.4, 1.6))
        i0 = int(round(t_cursor * fs))
        i1 = min(n, int(round((t_cursor + period) * fs)))
        if i1 <= i0:
            break
        u = (np.arange(i0, i1) / fs - t_cursor) / period
        # Asymmetric cycle: rise during [0, insp_fraction], fall after.
        phase = np.where(
            u < insp_fraction,
            0.5 * u / insp_fraction,
            0.5 + 0.5 * (u - insp_fraction) / (1.0 - insp_fraction),
        )
        wave[i0:i1] = depth * 0.5 * (1.0 - np.cos(2.0 * np.pi * phase))
        t_cursor += period
    # Centre around zero so it reads as a modulation, not an offset.
    return wave - wave.mean()
