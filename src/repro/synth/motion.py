"""Motion artifact generation.

The paper identifies motion as one of the two main ICG contaminants,
with energy in the 0.1-10 Hz band — squarely overlapping the ICG's own
0.8-20 Hz band, which is what makes arm-position sensitivity worth
quantifying.  Two mechanisms are modelled:

* *tremor*: continuous band-limited noise whose level depends on the
  arm position (isometric load when the arms are outstretched);
* *bursts*: occasional larger excursions from grip/posture adjustments,
  modelled as a Poisson process of smooth bumps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp import fir as _fir
from repro.errors import ConfigurationError

__all__ = ["MotionModel", "motion_artifact", "POSITION_TREMOR_LEVELS"]


#: Relative tremor level per protocol arm position.  Holding the device
#: to the chest (1) braces the arms; outstretched arms (2) add a little
#: isometric tremor; hanging arms (3) couple the device loosely to the
#: torso and sway, degrading morphology the most — which is what makes
#: Position 3 the worst-correlating posture in Table IV.
POSITION_TREMOR_LEVELS = {1: 1.0, 2: 1.15, 3: 1.35}


@dataclass(frozen=True)
class MotionModel:
    """Parameters of the motion artifact generator.

    Parameters
    ----------
    band_hz:
        Artifact band (the paper cites 0.1-10 Hz).
    tremor_rms:
        RMS of the continuous tremor component, in output units.
    burst_rate_hz:
        Expected number of burst events per second.
    burst_amplitude:
        Peak amplitude scale of burst events.
    burst_width_s:
        Typical burst duration.
    """

    band_hz: tuple = (0.1, 10.0)
    tremor_rms: float = 1.0
    burst_rate_hz: float = 0.15
    burst_amplitude: float = 4.0
    burst_width_s: float = 0.35

    def __post_init__(self) -> None:
        low, high = self.band_hz
        if not 0.0 < low < high:
            raise ConfigurationError(
                f"band must satisfy 0 < low < high, got {self.band_hz}")
        if self.tremor_rms < 0 or self.burst_amplitude < 0:
            raise ConfigurationError("amplitudes must be >= 0")
        if self.burst_rate_hz < 0:
            raise ConfigurationError("burst rate must be >= 0")
        if self.burst_width_s <= 0:
            raise ConfigurationError("burst width must be positive")


def motion_artifact(model: MotionModel, duration_s: float, fs: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Generate a motion artifact trace (same units as ``tremor_rms``)."""
    if duration_s <= 0 or fs <= 0:
        raise ConfigurationError("duration and fs must be positive")
    n = int(round(duration_s * fs))
    low, high = model.band_hz
    high = min(high, 0.45 * fs)
    if high <= low:
        raise ConfigurationError(
            f"artifact band {model.band_hz} does not fit below fs/2 = {fs/2}")

    artifact = np.zeros(n)
    if model.tremor_rms > 0 and n > 8:
        white = rng.standard_normal(n)
        taps = _fir.design_bandpass(min(128, 2 * (n // 4)), low, high, fs)
        tremor = _fir.filtfilt_fir(taps, white)
        rms = float(np.sqrt(np.mean(tremor**2)))
        if rms > 0:
            artifact += tremor * (model.tremor_rms / rms)

    if model.burst_rate_hz > 0 and model.burst_amplitude > 0:
        expected = model.burst_rate_hz * duration_s
        n_bursts = rng.poisson(expected)
        time_s = np.arange(n) / fs
        for _ in range(n_bursts):
            centre = rng.uniform(0.0, duration_s)
            width = model.burst_width_s * rng.uniform(0.6, 1.6)
            amplitude = (model.burst_amplitude
                         * rng.uniform(0.4, 1.0) * rng.choice([-1.0, 1.0]))
            artifact += amplitude * np.exp(
                -((time_s - centre) ** 2) / (2.0 * width**2))
    return artifact


def position_motion_model(position: int, base_rms: float,
                          band_hz: tuple = (0.1, 10.0)) -> MotionModel:
    """A :class:`MotionModel` scaled for a protocol arm position."""
    if position not in POSITION_TREMOR_LEVELS:
        raise ConfigurationError(
            f"position must be one of {sorted(POSITION_TREMOR_LEVELS)}, "
            f"got {position}")
    level = POSITION_TREMOR_LEVELS[position]
    return MotionModel(band_hz=band_hz,
                       tremor_rms=base_rms * level,
                       burst_rate_hz=0.1 * level,
                       burst_amplitude=3.0 * base_rms * level)
