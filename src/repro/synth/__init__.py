"""Physiological signal synthesis substrate.

Stands in for the paper's five human subjects: structured RR series,
Gaussian-sum ECG, landmark-exact ICG beats, respiration and motion
artifacts, front-end noise, subject profiles, and the full recording
assembler.
"""

from repro.synth.ecg_model import EcgBeatModel, WaveSpec, synthesize_ecg
from repro.synth.icg_model import (
    IcgBeatShape,
    integrate_to_impedance,
    synthesize_icg,
)
from repro.synth.motion import (
    POSITION_TREMOR_LEVELS,
    MotionModel,
    motion_artifact,
    position_motion_model,
)
from repro.synth.noise import (
    PowerlineModel,
    pink_noise,
    powerline_interference,
    white_noise,
)
from repro.synth.recording import SynthesisConfig, synthesize_recording
from repro.synth.respiration import RespirationModel, respiration_wave
from repro.synth.rr import RRModel, generate_rr_series, rr_to_beat_times
from repro.synth.subject import SubjectProfile, default_cohort, random_cohort

__all__ = [
    "RRModel", "generate_rr_series", "rr_to_beat_times",
    "EcgBeatModel", "WaveSpec", "synthesize_ecg",
    "IcgBeatShape", "synthesize_icg", "integrate_to_impedance",
    "RespirationModel", "respiration_wave",
    "MotionModel", "motion_artifact", "position_motion_model",
    "POSITION_TREMOR_LEVELS",
    "white_noise", "pink_noise", "PowerlineModel", "powerline_interference",
    "SubjectProfile", "default_cohort", "random_cohort",
    "SynthesisConfig", "synthesize_recording",
]
