"""Full recording synthesis: subject + pathway + artifacts -> Recording.

This is the library's stand-in for the human experiment.  Given a
subject, a measurement setup (traditional thoracic electrodes vs the
touch device in one of the three arm positions) and an injection
frequency, it renders a simultaneous ECG + impedance recording the way
the real front-end would deliver it, with every ground-truth quantity
attached as annotations/metadata:

* the shared cardiac timing (one RR series drives ECG and ICG),
* the pulsatile impedance (integrated from the synthetic -dZ/dt, scaled
  by the pathway's cardiac coupling and the instrument gain),
* respiration (0.04-2 Hz) and motion (0.1-10 Hz) artifacts per the
  paper's artifact taxonomy,
* front-end noise: white + flicker + mains pickup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioimpedance.electrodes import dry_finger_electrode
from repro.bioimpedance.pathways import (
    HandToHandPathway,
    InstrumentResponse,
    ThoracicPathway,
)
from repro.errors import ConfigurationError
from repro.io.records import Recording
from repro.synth.ecg_model import EcgBeatModel, synthesize_ecg
from repro.synth.icg_model import (
    IcgBeatShape,
    integrate_to_impedance,
    synthesize_icg,
)
from repro.synth.motion import MotionModel, motion_artifact, position_motion_model
from repro.synth.noise import PowerlineModel, pink_noise, powerline_interference, white_noise
from repro.synth.respiration import RespirationModel, respiration_wave
from repro.synth.rr import generate_rr_series, rr_to_beat_times
from repro.synth.subject import SubjectProfile

__all__ = ["SynthesisConfig", "synthesize_recording"]

_SETUPS = ("thoracic", "device")


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs of the recording synthesizer.

    Amplitude conventions: ECG in millivolt, impedance in ohm.  The
    defaults model a clean resting measurement; the artifact switches
    exist so tests can isolate individual mechanisms.
    """

    duration_s: float = 30.0
    fs: float = 250.0
    injection_frequency_hz: float = 50_000.0
    include_respiration: bool = True
    include_motion: bool = True
    include_noise: bool = True
    include_powerline: bool = True
    #: Peak respiration swing of *thoracic* impedance in ohm (devices
    #: see it scaled by their respiratory coupling).
    respiration_z_ohm: float = 0.35
    #: ECG baseline wander coupled from respiration, millivolt.
    ecg_wander_mv: float = 0.12
    #: White ECG noise RMS at perfect contact, millivolt (dry-finger
    #: contact divides quality in, raising this).
    ecg_noise_rms_mv: float = 0.008
    #: Mains pickup on the ECG channel, millivolt.
    ecg_powerline_mv: float = 0.015
    #: Impedance-channel white noise RMS at perfect contact, ohm.
    z_noise_rms_ohm: float = 0.0007
    #: Impedance-channel flicker noise RMS, ohm.
    z_pink_rms_ohm: float = 0.0005
    #: Respiratory coupling of the hand-to-hand path relative to
    #: thoracic (breathing still moves the shoulders/chest in the path).
    device_respiration_coupling: float = 0.45

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.fs <= 0:
            raise ConfigurationError("duration and fs must be positive")
        if self.injection_frequency_hz <= 0:
            raise ConfigurationError("injection frequency must be positive")


def _build_pathway(subject: SubjectProfile, setup: str, position: int):
    if setup == "thoracic":
        return ThoracicPathway(subject.geometry)
    contact = subject.effective_contact(position)
    return HandToHandPathway(subject.geometry, position,
                             electrode=dry_finger_electrode(contact))


def synthesize_recording(subject: SubjectProfile, setup: str = "device",
                         position: int = 1,
                         config: SynthesisConfig = None,
                         instrument: InstrumentResponse = None,
                         rng: np.random.Generator = None) -> Recording:
    """Render one protocol recording.

    Parameters
    ----------
    subject:
        Who is being measured.
    setup:
        ``"thoracic"`` (traditional electrodes, Fig 1) or ``"device"``
        (the touch device, Fig 2).
    position:
        Arm position 1-3 (ignored for the thoracic setup, which the
        protocol performs once in a reference posture).
    config:
        Synthesis knobs; defaults to the paper's protocol (30 s at
        250 Hz).
    instrument:
        Front-end response; defaults to the shared
        :class:`InstrumentResponse`.
    rng:
        Random generator; defaults to a deterministic stream derived
        from (subject, setup, position, frequency).

    Returns
    -------
    Recording
        Channels ``ecg`` (mV) and ``z`` (ohm, demodulated impedance).
        Annotations carry the ground truth: ``r_times_s``,
        ``t_peak_times_s``, ``b_times_s``, ``c_times_s``, ``x_times_s``,
        per-beat ``pep_beats_s`` / ``lvet_beats_s``.  Metadata records
        the setup, position, frequency and scalar ground truths.
    """
    if setup not in _SETUPS:
        raise ConfigurationError(f"setup must be one of {_SETUPS}, got {setup!r}")
    config = config or SynthesisConfig()
    instrument = instrument or InstrumentResponse()
    if rng is None:
        rng = subject.rng_for(setup, position,
                              int(config.injection_frequency_hz))

    # --- shared cardiac timing ------------------------------------------
    rr_model = subject.rr_model()
    n_beats = int(np.ceil(config.duration_s / rr_model.mean_rr_s)) + 2
    rr = generate_rr_series(rr_model, n_beats, rng)
    beat_times = rr_to_beat_times(rr)
    in_range = beat_times < config.duration_s - 0.65
    beat_times, rr = beat_times[in_range], rr[in_range]
    if beat_times.size < 3:
        raise ConfigurationError(
            "recording too short to contain at least three beats")

    # --- ECG channel -------------------------------------------------------
    ecg, t_peaks = synthesize_ecg(beat_times, rr, config.duration_s,
                                  config.fs, EcgBeatModel())
    n = ecg.size
    contact = (subject.effective_contact(position) if setup == "device"
               else 1.0)
    resp = respiration_wave(RespirationModel(rate_hz=subject.resp_rate_hz),
                            config.duration_s, config.fs, rng)
    if config.include_respiration:
        ecg = ecg + config.ecg_wander_mv * resp
    if config.include_noise:
        ecg = ecg + white_noise(config.ecg_noise_rms_mv / contact, n, rng)
    if config.include_powerline:
        ecg = ecg + powerline_interference(
            PowerlineModel(amplitude=config.ecg_powerline_mv / contact),
            config.duration_s, config.fs, rng)

    # --- impedance channel ---------------------------------------------
    pathway = _build_pathway(subject, setup, position)
    f_inj = config.injection_frequency_hz
    z0 = float(pathway.measured_z0(f_inj, instrument))
    gain = float(instrument.gain(f_inj))

    pep_beats = subject.pep_s + subject.pep_jitter_s * rng.standard_normal(
        beat_times.size)
    lvet_beats = subject.lvet_s + subject.lvet_jitter_s * rng.standard_normal(
        beat_times.size)
    amp_beats = subject.dzdt_max_ohm_per_s * (
        1.0 + subject.amp_jitter_fraction * rng.standard_normal(
            beat_times.size))
    pep_beats = np.clip(pep_beats, 0.05, 0.25)
    lvet_beats = np.clip(lvet_beats, 0.15, 0.45)
    amp_beats = np.clip(amp_beats, 0.2 * subject.dzdt_max_ohm_per_s, None)

    coupling = pathway.cardiac_coupling * gain
    icg_true, landmarks = synthesize_icg(
        beat_times, pep_beats, lvet_beats, amp_beats * coupling,
        config.duration_s, config.fs, IcgBeatShape())
    z = integrate_to_impedance(icg_true, config.fs, z0)

    if config.include_respiration:
        resp_coupling = (1.0 if setup == "thoracic"
                         else config.device_respiration_coupling)
        z = z + config.respiration_z_ohm * resp_coupling * gain * resp
    if config.include_motion and setup == "device":
        motion = position_motion_model(position,
                                       subject.tremor_z_rms_ohm / contact)
        z = z + motion_artifact(motion, config.duration_s, config.fs, rng)
    elif config.include_motion:
        # Standing still with gel electrodes: tiny residual motion.
        still = MotionModel(tremor_rms=0.0008, burst_rate_hz=0.02,
                            burst_amplitude=0.002)
        z = z + motion_artifact(still, config.duration_s, config.fs, rng)
    if config.include_noise:
        z = z + white_noise(config.z_noise_rms_ohm / contact, n, rng)
        z = z + pink_noise(config.z_pink_rms_ohm / contact, n, rng)

    annotations = {
        "r_times_s": beat_times,
        "t_peak_times_s": t_peaks,
        "b_times_s": landmarks["b_times_s"],
        "c_times_s": landmarks["c_times_s"],
        "x_times_s": landmarks["x_times_s"],
        "pep_beats_s": pep_beats,
        "lvet_beats_s": lvet_beats,
        "rr_beats_s": rr,
    }
    meta = {
        "subject_id": subject.subject_id,
        "setup": setup,
        "position": int(position),
        "injection_frequency_hz": float(f_inj),
        "fs": float(config.fs),
        "true_hr_bpm": float(60.0 / rr.mean()),
        "true_pep_s": float(pep_beats.mean()),
        "true_lvet_s": float(lvet_beats.mean()),
        "true_z0_ohm": z0,
        "cardiac_coupling": float(coupling),
        "contact_quality": float(contact),
    }
    return Recording(config.fs, {"ecg": ecg, "z": z}, annotations, meta)
