"""Synthetic ICG (-dZ/dt) generation with exact landmark ground truth.

Each beat is assembled from piecewise cubic Hermite segments through
knots placed *by construction* at the physiological landmarks:

* B — onset of ejection (value 0, slope 0: a true foot),
* C — the dZ/dt maximum (exact local maximum),
* the descending zero-crossing,
* X — aortic valve closure (exact local minimum),
* O — the diastolic filling wave (small positive lobe),

plus a small Gaussian A wave ahead of B.  Because the knots *are* the
landmarks, every synthetic beat carries exact ground truth for the
B/C/X detectors of :mod:`repro.icg.points` — something no real ICG
recording can provide.

A per-beat zero-integral correction is applied in late diastole so the
cardiac impedance ``Z(t) = Z0 - integral(ICG)`` returns to baseline
every cycle (venous-return recovery), preventing unphysical drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._compat import trapezoid
from repro.errors import ConfigurationError

__all__ = ["IcgBeatShape", "synthesize_icg", "integrate_to_impedance"]


@dataclass(frozen=True)
class IcgBeatShape:
    """Relative geometry of one ICG beat.

    Fractions are relative to LVET (for times inside the ejection) or to
    the C-wave amplitude (for wave amplitudes).  Defaults follow typical
    adult morphology (C peak ~35 % into ejection, X trough 40-50 % of C,
    O wave ~20 % of C about 160 ms after closure).
    """

    c_time_fraction: float = 0.35
    zero_time_fraction: float = 0.65
    x_amplitude_fraction: float = 0.45
    recovery_s: float = 0.06
    o_amplitude_fraction: float = 0.18
    o_delay_s: float = 0.16
    o_width_s: float = 0.12
    a_amplitude_fraction: float = 0.07
    a_lead_s: float = 0.07
    a_width_s: float = 0.018

    def __post_init__(self) -> None:
        if not 0.05 < self.c_time_fraction < self.zero_time_fraction < 1.0:
            raise ConfigurationError(
                "need 0.05 < c_time_fraction < zero_time_fraction < 1")
        for name in ("x_amplitude_fraction", "o_amplitude_fraction",
                     "a_amplitude_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        for name in ("recovery_s", "o_delay_s", "o_width_s", "a_lead_s",
                     "a_width_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


def _hermite_eval(time_s: np.ndarray, knots) -> np.ndarray:
    """Evaluate a piecewise cubic Hermite curve given ``(t, y, slope)``
    knots; zero outside the knot span."""
    out = np.zeros_like(time_s)
    for (t0, y0, m0), (t1, y1, m1) in zip(knots[:-1], knots[1:]):
        h = t1 - t0
        if h <= 0:
            raise ConfigurationError("knots must be strictly increasing")
        mask = (time_s >= t0) & (time_s < t1)
        if not mask.any():
            continue
        u = (time_s[mask] - t0) / h
        h00 = 2 * u**3 - 3 * u**2 + 1
        h10 = u**3 - 2 * u**2 + u
        h01 = -2 * u**3 + 3 * u**2
        h11 = u**3 - u**2
        out[mask] = h00 * y0 + h10 * h * m0 + h01 * y1 + h11 * h * m1
    return out


def _beat_knots(t_b: float, lvet: float, amp: float, shape: IcgBeatShape):
    """Hermite knots for one beat starting at B time ``t_b``."""
    t_c = t_b + shape.c_time_fraction * lvet
    t_z = t_b + shape.zero_time_fraction * lvet
    t_x = t_b + lvet
    t_rec = t_x + shape.recovery_s
    t_o = t_x + shape.o_delay_s
    t_o_end = t_o + shape.o_width_s
    amp_x = shape.x_amplitude_fraction * amp
    amp_o = shape.o_amplitude_fraction * amp
    slope_z = -(amp + amp_x) / (t_x - t_c)  # mean slope over the downstroke
    knots = [
        (t_b, 0.0, 0.0),
        (t_c, amp, 0.0),
        (t_z, 0.0, slope_z),
        (t_x, -amp_x, 0.0),
        (t_rec, -0.25 * amp_x, 0.8 * amp_x / shape.recovery_s),
        (t_o, amp_o, 0.0),
        (t_o_end, 0.0, 0.0),
    ]
    return knots, t_c, t_x, t_o_end


def _flat_top_profile(u: np.ndarray, taper: float) -> np.ndarray:
    """Tukey-style profile on u in [0, 1): raised-cosine ramps of width
    ``taper`` at both ends, flat top in between — minimal peak for a
    given area."""
    profile = np.ones_like(u)
    rising = u < taper
    falling = u > 1.0 - taper
    profile[rising] = 0.5 * (1.0 - np.cos(np.pi * u[rising] / taper))
    profile[falling] = 0.5 * (1.0 - np.cos(np.pi * (1.0 - u[falling])
                                           / taper))
    return profile


def _as_per_beat(value, n_beats: int, name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n_beats, float(arr))
    if arr.shape != (n_beats,):
        raise ConfigurationError(
            f"{name} must be a scalar or length-{n_beats} array, "
            f"got shape {arr.shape}")
    return arr


def synthesize_icg(beat_times_s, pep_s, lvet_s, dzdt_max, duration_s: float,
                   fs: float, shape: IcgBeatShape = None,
                   zero_mean_per_beat: bool = True):
    """Render a full ICG (-dZ/dt) trace with exact landmark ground truth.

    Parameters
    ----------
    beat_times_s:
        R-peak times (seconds); B points land at ``r + pep``.
    pep_s, lvet_s, dzdt_max:
        Pre-ejection period, ejection time and C amplitude — scalars or
        per-beat arrays for beat-to-beat variability.
    duration_s, fs:
        Output length (seconds) and sampling rate (Hz).
    shape:
        Relative beat geometry, see :class:`IcgBeatShape`.
    zero_mean_per_beat:
        Add the diastolic zero-integral correction (recommended; keeps
        ``Z(t)`` drift-free).

    Returns
    -------
    (icg, landmarks)
        ``icg`` in ohm/s, and a dict of per-beat ground-truth arrays
        ``{"b_times_s", "c_times_s", "x_times_s"}``.
    """
    beat_times_s = np.asarray(beat_times_s, dtype=float)
    if beat_times_s.ndim != 1 or beat_times_s.size == 0:
        raise ConfigurationError("beat_times_s must be a non-empty 1-D array")
    if duration_s <= 0 or fs <= 0:
        raise ConfigurationError("duration and fs must be positive")
    shape = shape or IcgBeatShape()
    n_beats = beat_times_s.size
    pep = _as_per_beat(pep_s, n_beats, "pep_s")
    lvet = _as_per_beat(lvet_s, n_beats, "lvet_s")
    amp = _as_per_beat(dzdt_max, n_beats, "dzdt_max")
    if np.any(pep <= 0) or np.any(lvet <= 0) or np.any(amp <= 0):
        raise ConfigurationError("pep, lvet and dzdt_max must be positive")

    n = int(round(duration_s * fs))
    time_s = np.arange(n) / fs
    icg = np.zeros(n)
    b_times = beat_times_s + pep
    c_times = np.empty(n_beats)
    x_times = np.empty(n_beats)

    for i in range(n_beats):
        knots, t_c, t_x, t_o_end = _beat_knots(b_times[i], lvet[i], amp[i],
                                               shape)
        c_times[i] = t_c
        x_times[i] = t_x
        lo = max(0, int((b_times[i] - 0.2) * fs))
        hi = min(n, int((t_o_end + 0.6) * fs) + 1)
        if lo >= hi:
            continue
        segment = _hermite_eval(time_s[lo:hi], knots)
        # A wave (atrial kick) ahead of B; 3.9 sigma from the B knot so
        # the onset ground truth stays exact to numerical precision.
        t_a = b_times[i] - shape.a_lead_s
        segment -= (shape.a_amplitude_fraction * amp[i]) * np.exp(
            -((time_s[lo:hi] - t_a) ** 2) / (2.0 * shape.a_width_s**2))
        if zero_mean_per_beat:
            # Distribute the net beat area over the whole diastole as a
            # shallow flat-topped plateau — the venous-return recovery
            # of Z.  Spreading it wide keeps its depth far above the X
            # trough so it can never masquerade as an X0 candidate.
            net_area = trapezoid(segment, dx=1.0 / fs)
            next_b = (b_times[i + 1] if i + 1 < n_beats
                      else t_o_end + 0.4)
            window_start = t_x + shape.recovery_s + 0.02
            window_end = max(window_start + 0.15,
                             next_b - shape.a_lead_s - 0.05)
            mask = (time_s[lo:hi] >= window_start) & (time_s[lo:hi]
                                                      < window_end)
            if mask.any():
                u = ((time_s[lo:hi][mask] - window_start)
                     / (window_end - window_start))
                lobe = _flat_top_profile(u, taper=0.35)
                lobe_area = trapezoid(lobe, dx=1.0 / fs)
                if lobe_area > 0:
                    segment[mask] -= lobe * (net_area / lobe_area)
        icg[lo:hi] += segment

    landmarks = {
        "b_times_s": b_times,
        "c_times_s": c_times,
        "x_times_s": x_times,
    }
    return icg, landmarks


def integrate_to_impedance(icg, fs: float, z0_ohm: float) -> np.ndarray:
    """Cardiac impedance trace ``Z(t) = Z0 - integral(ICG) dt``.

    The device measures Z; its firmware differentiates to get the ICG.
    This inverse operation produces the measured channel from the
    synthetic ICG.
    """
    icg = np.asarray(icg, dtype=float)
    if icg.ndim != 1 or icg.size == 0:
        raise ConfigurationError("icg must be a non-empty 1-D array")
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    # Trapezoidal cumulative integral.
    increments = 0.5 * (icg[1:] + icg[:-1]) / fs
    integral = np.concatenate([[0.0], np.cumsum(increments)])
    return z0_ohm - integral
