"""Measurement noise generators: white, pink (1/f) and powerline.

These model the front-end's electronic noise floor and mains coupling —
the "high-frequency noise interference" the paper's 20 Hz ICG low-pass
and 0.05-40 Hz ECG band-pass are there to suppress.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "white_noise",
    "pink_noise",
    "PowerlineModel",
    "powerline_interference",
]


def white_noise(rms: float, n: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian white noise with the requested RMS."""
    if rms < 0:
        raise ConfigurationError(f"rms must be >= 0, got {rms}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return rms * rng.standard_normal(n)


def pink_noise(rms: float, n: int, rng: np.random.Generator) -> np.ndarray:
    """1/f (flicker) noise with the requested RMS, via spectral shaping.

    White Gaussian noise is shaped in the frequency domain by
    ``1/sqrt(f)`` (so power goes as 1/f), with the DC bin zeroed.
    """
    if rms < 0:
        raise ConfigurationError(f"rms must be >= 0, got {rms}")
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    spectrum = np.fft.rfft(rng.standard_normal(n))
    freqs = np.fft.rfftfreq(n)
    shaping = np.zeros_like(freqs)
    shaping[1:] = 1.0 / np.sqrt(freqs[1:])
    shaped = np.fft.irfft(spectrum * shaping, n)
    current_rms = float(np.sqrt(np.mean(shaped**2)))
    if current_rms == 0:
        return np.zeros(n)
    return shaped * (rms / current_rms)


@dataclass(frozen=True)
class PowerlineModel:
    """Mains interference: fundamental plus decaying odd harmonics.

    Parameters
    ----------
    frequency_hz:
        Mains fundamental (50 Hz in Europe, where the paper's
        measurements were made; 60 Hz available for completeness).
    amplitude:
        Peak amplitude of the fundamental, in output units.
    harmonic_decay:
        Each successive odd harmonic is scaled by this factor.
    n_harmonics:
        How many odd harmonics to include (1 = fundamental only).
    amplitude_drift:
        Fractional slow drift of the envelope (coupling changes as the
        subject moves).
    """

    frequency_hz: float = 50.0
    amplitude: float = 1.0
    harmonic_decay: float = 0.3
    n_harmonics: int = 2
    amplitude_drift: float = 0.2

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("mains frequency must be positive")
        if self.amplitude < 0:
            raise ConfigurationError("amplitude must be >= 0")
        if not 0.0 <= self.harmonic_decay <= 1.0:
            raise ConfigurationError("harmonic decay must be in [0, 1]")
        if self.n_harmonics < 1:
            raise ConfigurationError("need at least the fundamental")
        if not 0.0 <= self.amplitude_drift < 1.0:
            raise ConfigurationError("amplitude drift must be in [0, 1)")


def powerline_interference(model: PowerlineModel, duration_s: float,
                           fs: float,
                           rng: np.random.Generator) -> np.ndarray:
    """Generate a mains-interference trace.

    Harmonics above Nyquist are silently skipped (they would alias in a
    real ADC, but the device's anti-alias front-end removes them first —
    see :mod:`repro.device.afe`).
    """
    if duration_s <= 0 or fs <= 0:
        raise ConfigurationError("duration and fs must be positive")
    n = int(round(duration_s * fs))
    t = np.arange(n) / fs
    trace = np.zeros(n)
    # Slow sinusoidal envelope drift with random phase.
    drift = 1.0 + model.amplitude_drift * np.sin(
        2.0 * np.pi * 0.05 * t + rng.uniform(0.0, 2.0 * np.pi))
    for k in range(model.n_harmonics):
        harmonic = (2 * k + 1)  # odd harmonics: 1x, 3x, 5x, ...
        f_k = model.frequency_hz * harmonic
        if f_k >= fs / 2.0:
            continue
        amplitude = model.amplitude * model.harmonic_decay**k
        trace += amplitude * np.sin(2.0 * np.pi * f_k * t
                                    + rng.uniform(0.0, 2.0 * np.pi))
    return trace * drift
