"""CHF decompensation detection from daily touch measurements.

Closes the loop the paper's introduction opens: weight gain precedes
many CHF hospitalisations but not reliably (Chaudhry et al., the
paper's [2]); hemodynamic parameters are the "more relevant and more
reliable" early signal.  This module implements:

* a decompensation *scenario generator* — day-resolved physiological
  trajectories where thoracic fluid accumulates over one to two weeks:
  Z0 falls (more conductive fluid), dZ/dt and LVET fall (weakening
  ejection), HR rises, PEP lengthens, and body weight lags the fluid
  by several days (fluid shifts precede scale-visible weight gain);
* a multi-parameter risk index over the daily measurement series,
  with the alert rule (sustained multi-day deviation);
* the weight-only comparator the paper's introduction argues against,
  so the two alert times can be compared (see the CHF bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.monitoring.trends import TrendTracker

__all__ = [
    "DecompensationScenario",
    "simulate_decompensation_course",
    "DailyMeasurement",
    "ChfMonitor",
    "WeightMonitor",
]


@dataclass(frozen=True)
class DecompensationScenario:
    """Day-resolved trajectory of a decompensating subject.

    ``onset_day`` is when fluid accumulation starts; ``ramp_days`` how
    long until the full shift is reached.  Magnitudes default to the
    hemodynamic literature's decompensation ranges (Z0 drops by
    ~15-20 %, LVET shortens by ~15 %, HR rises ~15 bpm over the
    episode).  Weight lags the fluid shift by ``weight_lag_days``.
    """

    n_days: int = 40
    onset_day: int = 20
    ramp_days: int = 10
    z0_drop_fraction: float = 0.18
    lvet_drop_fraction: float = 0.15
    dzdt_drop_fraction: float = 0.25
    pep_rise_fraction: float = 0.12
    hr_rise_bpm: float = 14.0
    weight_gain_kg: float = 3.0
    weight_lag_days: float = 5.0

    def __post_init__(self) -> None:
        if not 0 < self.onset_day < self.n_days:
            raise ConfigurationError(
                "onset must fall inside the simulated course")
        if self.ramp_days < 1:
            raise ConfigurationError("ramp must last at least one day")
        for name in ("z0_drop_fraction", "lvet_drop_fraction",
                     "dzdt_drop_fraction", "pep_rise_fraction"):
            if not 0.0 <= getattr(self, name) < 0.8:
                raise ConfigurationError(f"{name} must be in [0, 0.8)")

    def severity(self, day: float) -> float:
        """Fraction of the full shift reached on a given day (0..1)."""
        if day < self.onset_day:
            return 0.0
        return float(min(1.0, (day - self.onset_day) / self.ramp_days))

    def weight_severity(self, day: float) -> float:
        """Weight follows the fluid shift with a lag."""
        return self.severity(day - self.weight_lag_days)


@dataclass(frozen=True)
class DailyMeasurement:
    """One day's parameter set, as the device + a scale would report."""

    day: int
    z0_ohm: float
    lvet_s: float
    pep_s: float
    hr_bpm: float
    dzdt_max_ohm_s: float
    weight_kg: float

    @property
    def tfc(self) -> float:
        """Thoracic fluid content, 1000/Z0."""
        return 1000.0 / self.z0_ohm


def simulate_decompensation_course(subject, scenario: DecompensationScenario,
                                   rng: np.random.Generator,
                                   measurement_noise: float = 0.02,
                                   baseline_weight_kg: float = None) -> list:
    """Daily measurement series over a decompensation course.

    Parameters are derived from the subject's resting values, scaled by
    the scenario severity, with multiplicative day-to-day measurement
    noise (``measurement_noise`` fractional sigma — spot-check
    variability of a self-administered touch measurement).
    """
    if measurement_noise < 0:
        raise ConfigurationError("measurement noise must be >= 0")
    weight0 = (baseline_weight_kg if baseline_weight_kg is not None
               else subject.weight_kg)
    # A hand-to-hand Z0 proxy: scaled from subject geometry the same
    # way the pathway model does (level only matters relatively here).
    from repro.bioimpedance.pathways import HandToHandPathway
    z0_baseline = float(HandToHandPathway(subject.geometry, 1).measured_z0(
        50_000.0))

    course = []
    for day in range(scenario.n_days):
        severity = scenario.severity(day)

        def noisy(value: float) -> float:
            return value * (1.0 + measurement_noise * rng.standard_normal())

        course.append(DailyMeasurement(
            day=day,
            z0_ohm=noisy(z0_baseline
                         * (1.0 - scenario.z0_drop_fraction * severity)),
            lvet_s=noisy(subject.lvet_s
                         * (1.0 - scenario.lvet_drop_fraction * severity)),
            pep_s=noisy(subject.pep_s
                        * (1.0 + scenario.pep_rise_fraction * severity)),
            hr_bpm=noisy(subject.hr_bpm + scenario.hr_rise_bpm * severity),
            dzdt_max_ohm_s=noisy(
                subject.dzdt_max_ohm_per_s
                * (1.0 - scenario.dzdt_drop_fraction * severity)),
            weight_kg=(weight0
                       + scenario.weight_gain_kg
                       * scenario.weight_severity(day)
                       + 0.15 * rng.standard_normal()),
        ))
    return course


@dataclass
class ChfMonitor:
    """Multi-parameter decompensation alert.

    Tracks TFC (rising), LVET (falling), PEP/LVET ratio (rising) and HR
    (rising) with :class:`TrendTracker` baselines; the daily risk index
    is the mean of the *signed* deviation scores oriented so that
    "worse" is positive.  The alert fires after ``persistence_days``
    consecutive days above ``threshold`` — single bad measurements do
    not page a physician.
    """

    threshold: float = 2.0
    persistence_days: int = 3
    baseline_days: float = 14.0
    _trackers: dict = field(default_factory=dict, repr=False)
    _streak: int = field(default=0, repr=False)
    risk_history: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if self.persistence_days < 1:
            raise ConfigurationError("persistence must be >= 1 day")
        for name in ("tfc", "lvet", "pep_ratio", "hr"):
            self._trackers[name] = TrendTracker(self.baseline_days)

    def update(self, measurement: DailyMeasurement) -> float:
        """Ingest one day's measurement; returns the day's risk index."""
        if measurement.lvet_s <= 0:
            raise SignalError("LVET must be positive")
        scores = [
            self._trackers["tfc"].update(measurement.tfc),           # up = bad
            -self._trackers["lvet"].update(measurement.lvet_s),      # down = bad
            self._trackers["pep_ratio"].update(
                measurement.pep_s / measurement.lvet_s),             # up = bad
            self._trackers["hr"].update(measurement.hr_bpm),         # up = bad
        ]
        risk = float(np.mean(scores))
        self.risk_history.append(risk)
        if risk > self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        return risk

    @property
    def alert(self) -> bool:
        """True once the persistence rule is satisfied."""
        return self._streak >= self.persistence_days

    def run(self, course) -> int:
        """Process a whole course; return the alert day (or -1)."""
        for measurement in course:
            self.update(measurement)
            if self.alert:
                return measurement.day
        return -1


@dataclass
class WeightMonitor:
    """The weight-gain comparator of the paper's introduction.

    Implements the guideline rule referenced by Chaudhry et al.: alert
    on a gain of ``gain_threshold_kg`` over any ``window_days`` window.
    """

    gain_threshold_kg: float = 2.0
    window_days: int = 7
    _history: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.gain_threshold_kg <= 0:
            raise ConfigurationError("gain threshold must be positive")
        if self.window_days < 1:
            raise ConfigurationError("window must be >= 1 day")

    def update(self, measurement: DailyMeasurement) -> bool:
        """Ingest one day's weight; returns True when the rule fires."""
        self._history.append((measurement.day, measurement.weight_kg))
        current_day, current_weight = self._history[-1]
        window = [w for d, w in self._history
                  if current_day - self.window_days <= d < current_day]
        if not window:
            return False
        return current_weight - min(window) >= self.gain_threshold_kg

    def run(self, course) -> int:
        """Process a whole course; return the alert day (or -1)."""
        for measurement in course:
            if self.update(measurement):
                return measurement.day
        return -1
