"""Out-patient monitoring on top of the device's daily measurements.

The paper's future-work direction, built out: longitudinal trend
tracking, CHF decompensation alerts (and the weight-gain comparator its
introduction argues against), and respiration-rate extraction from the
signals the device already acquires.
"""

from repro.monitoring.chf import (
    ChfMonitor,
    DailyMeasurement,
    DecompensationScenario,
    WeightMonitor,
    simulate_decompensation_course,
)
from repro.monitoring.respiration_rate import (
    fuse_rate_estimates,
    respiration_rate_from_impedance,
    respiration_rate_from_rr,
)
from repro.monitoring.trends import (
    DailySummary,
    TrendTracker,
    aggregate_daily,
    summarize_beat_series,
    theil_sen_slope,
)

__all__ = [
    "DailySummary", "aggregate_daily", "summarize_beat_series",
    "theil_sen_slope", "TrendTracker",
    "DecompensationScenario", "simulate_decompensation_course",
    "DailyMeasurement", "ChfMonitor", "WeightMonitor",
    "respiration_rate_from_impedance", "respiration_rate_from_rr",
    "fuse_rate_estimates",
]
