"""Longitudinal parameter tracking for out-patient monitoring.

The paper's motivation is congestive heart failure: daily touch
measurements produce a time series of hemodynamic parameters, and the
clinically useful signal is the *trend* — thoracic fluid content
creeping up, LVET shortening — days before a decompensation event.
This module provides the robust trend machinery those alerts need:

* daily aggregation of repeated spot measurements (median, not mean:
  single bad-grip takes must not move the day),
* Theil-Sen slope estimation (median of pairwise slopes — robust to a
  third of the points being corrupted),
* exponentially weighted baselines with deviation scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SignalError

__all__ = [
    "DailySummary",
    "aggregate_daily",
    "summarize_beat_series",
    "theil_sen_slope",
    "TrendTracker",
]

#: Columns of a BeatHemodynamicsSeries that make sense as daily
#: monitoring parameters.
BEAT_SERIES_PARAMETERS = ("pep_s", "lvet_s", "hr_bpm",
                          "sv_kubicek_ml", "co_kubicek_l_min")


@dataclass(frozen=True)
class DailySummary:
    """Robust summary of one day's measurements of one parameter."""

    day: int
    median: float
    spread: float
    n_measurements: int


def aggregate_daily(days, values) -> list:
    """Collapse repeated measurements into per-day robust summaries.

    Parameters
    ----------
    days:
        Integer day index per measurement (need not be contiguous).
    values:
        Measured parameter values, same length.

    Returns
    -------
    list of :class:`DailySummary`, sorted by day.
    """
    days = np.asarray(days, dtype=int)
    values = np.asarray(values, dtype=float)
    if days.shape != values.shape or days.ndim != 1:
        raise SignalError("days and values must be equal-length 1-D arrays")
    if days.size == 0:
        raise SignalError("no measurements to aggregate")
    summaries = []
    for day in np.unique(days):
        sample = values[days == day]
        sample = sample[np.isfinite(sample)]
        if sample.size == 0:
            continue
        mad = float(np.median(np.abs(sample - np.median(sample))))
        summaries.append(DailySummary(
            day=int(day),
            median=float(np.median(sample)),
            spread=1.4826 * mad,   # MAD -> sigma-equivalent
            n_measurements=int(sample.size),
        ))
    if not summaries:
        raise SignalError("all measurements were non-finite")
    return summaries


def summarize_beat_series(day: int, series,
                          parameters=BEAT_SERIES_PARAMETERS) -> dict:
    """One monitoring sample per parameter from a beat-batched series.

    The longitudinal tracker consumes *one robust value per session*;
    this collapses the columns of a
    :class:`~repro.icg.hemodynamics.BeatHemodynamicsSeries` (the
    pipeline's beat-batched output) into per-parameter
    :class:`DailySummary` entries — median/MAD over beats, computed as
    column reductions with no per-beat Python.  Returns
    ``{parameter: DailySummary}``; parameters whose column is entirely
    non-finite are omitted.
    """
    if series.n_beats == 0:
        raise SignalError("beat series is empty")
    out = {}
    for name in parameters:
        values = np.asarray(getattr(series, name), dtype=float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            continue
        mad = float(np.median(np.abs(finite - np.median(finite))))
        out[name] = DailySummary(
            day=int(day),
            median=float(np.median(finite)),
            spread=1.4826 * mad,
            n_measurements=int(finite.size),
        )
    return out


def theil_sen_slope(x, y) -> float:
    """Theil-Sen estimator: the median of all pairwise slopes.

    Robust to ~29 % arbitrary outliers — the right tool for
    self-administered home measurements.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise SignalError("x and y must be equal-length 1-D arrays")
    if x.size < 2:
        raise SignalError("need at least two points for a slope")
    slopes = []
    for i in range(x.size - 1):
        dx = x[i + 1:] - x[i]
        dy = y[i + 1:] - y[i]
        valid = dx != 0
        slopes.extend((dy[valid] / dx[valid]).tolist())
    if not slopes:
        raise SignalError("all abscissae identical; slope undefined")
    return float(np.median(slopes))


class TrendTracker:
    """Exponentially weighted baseline with deviation scoring.

    Feed one value per day with :meth:`update`; the tracker maintains a
    slow baseline (time constant ``baseline_days``) and a robust scale,
    and reports each new value's deviation in scale units.  A CHF-style
    alert rule then triggers on sustained deviations (see
    :mod:`repro.monitoring.chf`).
    """

    def __init__(self, baseline_days: float = 14.0,
                 scale_floor: float = 1e-6,
                 warmup_updates: int = 7) -> None:
        if baseline_days <= 1.0:
            raise ConfigurationError("baseline time constant must exceed "
                                     "one day")
        if scale_floor <= 0:
            raise ConfigurationError("scale floor must be positive")
        if warmup_updates < 1:
            raise ConfigurationError("warm-up must be >= 1 update")
        self._alpha = 1.0 - np.exp(-1.0 / baseline_days)
        self._scale_floor = float(scale_floor)
        self._warmup = int(warmup_updates)
        self.baseline = None
        self.scale = None
        self.n_updates = 0

    def update(self, value: float) -> float:
        """Ingest one daily value; return its deviation score.

        The score is ``(value - baseline) / scale`` *before* the
        baseline absorbs the new value, so a genuine step change keeps
        scoring high until the alert logic has had its chance.  The
        first few days return 0 while the baseline forms.
        """
        value = float(value)
        if not np.isfinite(value):
            raise SignalError("value must be finite")
        if self.baseline is None:
            self.baseline = value
            self.scale = self._scale_floor
            self.n_updates = 1
            return 0.0
        deviation = value - self.baseline
        score = deviation / max(self.scale, self._scale_floor)
        # Update the robust scale from the absolute deviation (EW-MAD).
        self.scale = ((1.0 - self._alpha) * self.scale
                      + self._alpha * 1.4826 * abs(deviation))
        self.baseline = ((1.0 - self._alpha) * self.baseline
                         + self._alpha * value)
        self.n_updates += 1
        if self.n_updates <= self._warmup:
            return 0.0   # warm-up: scale estimate not yet meaningful
        return float(score)
