"""Respiration-rate extraction from the device's own signals.

The touch device measures thoracic impedance: breathing modulates it
directly (impedance pneumography) and also modulates the heart period
(respiratory sinus arrhythmia).  Both estimates come for free from
signals the device already acquires, extending the report payload —
one of the natural follow-ons to the paper's future work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cache import FilterDesignCache, default_design_cache
from repro.dsp import iir as _iir
from repro.dsp import spectral as _spectral
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "respiration_rate_from_impedance",
    "respiration_rate_from_rr",
    "fuse_rate_estimates",
]

#: The paper's respiration band (Section II): 0.04 - 2 Hz.
RESPIRATION_BAND_HZ = (0.04, 2.0)


def respiration_rate_from_impedance(z, fs: float,
                                    band_hz: tuple = (0.08, 0.7),
                                    cache: Optional[FilterDesignCache]
                                    = None) -> float:
    """Breathing rate (Hz) from the raw impedance channel.

    The cardiac component is removed with a zero-phase low-pass at the
    band's upper edge, then the dominant PSD peak inside the band is
    taken.  The search band defaults to 5-42 breaths/min (resting to
    brisk), inside the paper's 0.04-2 Hz artifact band.  The low-pass
    design comes from the filter-design ``cache`` (the process-wide
    default when omitted), so trend monitors analysing many days of
    measurements pay it once.
    """
    z = np.asarray(z, dtype=float)
    if z.ndim != 1 or z.size == 0:
        raise SignalError("expected a non-empty 1-D impedance trace")
    low, high = band_hz
    if not RESPIRATION_BAND_HZ[0] <= low < high <= RESPIRATION_BAND_HZ[1]:
        raise ConfigurationError(
            f"band {band_hz} must sit inside the respiration band "
            f"{RESPIRATION_BAND_HZ}")
    if z.size < int(3.0 / low * fs / 4):
        raise SignalError(
            "impedance trace too short to resolve the requested band")
    if cache is None:
        cache = default_design_cache()
    sos = cache.respiration_lowpass_sos(fs, min(2.0 * high, 0.45 * fs))
    slow = _iir.sosfiltfilt(sos, z - z.mean())
    return _spectral.dominant_frequency(slow, fs, low_hz=low, high_hz=high)


def respiration_rate_from_rr(r_times_s, band_hz: tuple = (0.08, 0.7),
                             resample_hz: float = 4.0) -> float:
    """Breathing rate (Hz) from respiratory sinus arrhythmia.

    The RR tachogram is resampled to a uniform grid and the dominant
    high-frequency peak of its spectrum is the RSA — i.e. respiration —
    frequency.  Needs at least ~30 s of beats for a stable estimate.
    """
    r_times_s = np.asarray(r_times_s, dtype=float)
    if r_times_s.ndim != 1 or r_times_s.size < 8:
        raise SignalError("need at least eight R peaks for RSA analysis")
    if np.any(np.diff(r_times_s) <= 0):
        raise SignalError("R-peak times must be strictly increasing")
    rr = np.diff(r_times_s)
    mid_times = 0.5 * (r_times_s[:-1] + r_times_s[1:])
    duration = mid_times[-1] - mid_times[0]
    low, high = band_hz
    if duration < 2.0 / low:
        raise SignalError(
            f"tachogram spans only {duration:.1f} s; too short for "
            f"{low} Hz resolution")
    grid = np.arange(mid_times[0], mid_times[-1], 1.0 / resample_hz)
    tachogram = np.interp(grid, mid_times, rr)
    return _spectral.dominant_frequency(tachogram - tachogram.mean(),
                                        resample_hz, low_hz=low,
                                        high_hz=high)


def fuse_rate_estimates(rate_impedance_hz: float, rate_rsa_hz: float,
                        max_disagreement: float = 0.3) -> float:
    """Combine the two estimates; reject when they disagree.

    Agreement within ``max_disagreement`` (fractional) returns the
    mean; disagreement raises — the caller should re-measure rather
    than report a fabricated number.
    """
    if rate_impedance_hz <= 0 or rate_rsa_hz <= 0:
        raise ConfigurationError("rates must be positive")
    mean = 0.5 * (rate_impedance_hz + rate_rsa_hz)
    if abs(rate_impedance_hz - rate_rsa_hz) > max_disagreement * mean:
        raise SignalError(
            f"estimates disagree: impedance {rate_impedance_hz:.3f} Hz "
            f"vs RSA {rate_rsa_hz:.3f} Hz")
    return mean
