"""repro — touch-based beat-to-beat ICG/ECG acquisition and hemodynamic
parameter estimation.

A full reproduction of Sopic, Murali, Rincón and Atienza, "Touch-Based
System for Beat-to-Beat Impedance Cardiogram Acquisition and
Hemodynamic Parameters Estimation" (DATE 2016): the published signal
chain (morphological ECG baseline removal, zero-phase filters,
Pan-Tompkins, beat-to-beat ICG B/C/X detection, LVET/PEP/HR/Z0), a
physiological synthesizer standing in for the human subjects, a model
of the acquisition hardware (front ends, ADC, MCU cycle costs, radio,
battery, PMU), a streaming firmware simulator, and an experiment runner
that regenerates every table and figure of the evaluation.

Quick start::

    from repro import (BeatToBeatPipeline, default_cohort,
                       synthesize_recording)

    subject = default_cohort()[0]
    recording = synthesize_recording(subject, "device", position=1)
    result = BeatToBeatPipeline(recording.fs).process_recording(recording)
    print(result.summary())   # {'z0_ohm': ..., 'lvet_s': ..., ...}

Subpackage map (one per subsystem):

- :mod:`repro.core` — the beat-to-beat pipeline (the paper's algorithm);
- :mod:`repro.dsp` — filters, morphology, derivatives, spectra;
- :mod:`repro.ecg` / :mod:`repro.icg` — signal-specific processing;
- :mod:`repro.bioimpedance` — tissue/electrode/pathway physics;
- :mod:`repro.synth` — subject and recording synthesis;
- :mod:`repro.device` — hardware models and the firmware simulator;
- :mod:`repro.rt` — streaming kernels with operation counting;
- :mod:`repro.experiments` — the protocol, study runner and shard
  partition/merge layer;
- :mod:`repro.ingest` — streaming ingest: chunked sources, the
  simulated device fleet, the bounded work queue and the streaming
  executor;
- :mod:`repro.serve` — the supervised always-on analysis service
  (``repro serve``): session supervision, deadline/backoff policies,
  load-shedding degradation, crash-recovering restarts and the
  health endpoint;
- :mod:`repro.io` — recording containers, shard artifacts and
  persistence.
"""

from repro.core import (
    BeatToBeatPipeline,
    FilterDesignCache,
    PipelineConfig,
    PipelineResult,
    process_batch,
)
from repro.core.executor import PoisonJob, raise_if_poison
from repro.errors import (
    ArchiveError,
    ConfigurationError,
    DetectionError,
    HardwareError,
    JournalError,
    PoisonJobError,
    ProtocolError,
    QueueClosedError,
    ReproError,
    SignalError,
    SupervisorError,
)
from repro.experiments import ProtocolConfig, StudyResult, run_study
from repro.io import Recording
from repro.synth import (
    SubjectProfile,
    SynthesisConfig,
    default_cohort,
    random_cohort,
    synthesize_recording,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BeatToBeatPipeline", "PipelineConfig", "PipelineResult",
    "FilterDesignCache", "process_batch",
    "Recording",
    "SubjectProfile", "default_cohort", "random_cohort",
    "SynthesisConfig", "synthesize_recording",
    "ProtocolConfig", "StudyResult", "run_study",
    "ReproError", "ConfigurationError", "SignalError", "DetectionError",
    "HardwareError", "ProtocolError", "JournalError", "ArchiveError",
    "PoisonJobError", "PoisonJob", "raise_if_poison",
    "QueueClosedError", "SupervisorError",
]
