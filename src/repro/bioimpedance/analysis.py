"""Analysis metrics for the bioimpedance position/frequency study.

Implements the quantities the paper's evaluation reports:

* Pearson correlation coefficients between device and thoracic signals
  (Tables II-IV),
* mean base impedance per position/frequency (Figs 6-7),
* the relative position errors e21, e23, e31 of equations (1)-(3)
  (Fig 8).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SignalError

__all__ = [
    "pearson_correlation",
    "mean_impedance",
    "relative_error",
    "position_relative_errors",
    "ERROR_PAIRS",
]


#: The three position pairs of the paper's equations (1)-(3), as
#: ``name -> (numerator_reference_position, subtracted_position)``:
#: ``e21 = (Z2 - Z1) / Z2`` and so on.
ERROR_PAIRS = {
    "e21": (2, 1),
    "e23": (2, 3),
    "e31": (3, 1),
}


def pearson_correlation(x, y) -> float:
    """Pearson correlation coefficient between two equal-length signals.

    This is the statistic of Tables II-IV, computed between the touch
    device's signal and the thoracic reference.  Raises
    :class:`SignalError` for degenerate (constant) inputs rather than
    returning NaN.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise SignalError(
            f"correlation needs two 1-D arrays of equal length, got "
            f"{x.shape} and {y.shape}")
    if x.size < 2:
        raise SignalError("correlation needs at least two samples")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt(np.sum(xc**2) * np.sum(yc**2))
    if denom == 0:
        raise SignalError("correlation undefined for constant signals")
    return float(np.clip(np.sum(xc * yc) / denom, -1.0, 1.0))


def mean_impedance(z) -> float:
    """Mean of an impedance trace; rejects empty or non-finite input."""
    z = np.asarray(z, dtype=float)
    if z.size == 0:
        raise SignalError("impedance trace is empty")
    if not np.all(np.isfinite(z)):
        raise SignalError("impedance trace contains non-finite samples")
    return float(z.mean())


def relative_error(z_reference: float, z_other: float) -> float:
    """The paper's relative error: ``(z_reference - z_other) / z_reference``.

    Equation (1) with ``z_reference = Zposition2`` and
    ``z_other = Zposition1`` yields e21; the sign convention follows the
    paper (positive when the reference position reads higher).
    """
    if z_reference == 0:
        raise ConfigurationError("reference impedance must be non-zero")
    return float((z_reference - z_other) / z_reference)


def position_relative_errors(mean_z_by_position: dict) -> dict:
    """All three paper error metrics from per-position mean impedances.

    Parameters
    ----------
    mean_z_by_position:
        Mapping ``{1: Z1, 2: Z2, 3: Z3}`` of mean measured impedance per
        protocol position (any numeric values).

    Returns
    -------
    dict
        ``{"e21": ..., "e23": ..., "e31": ...}`` following equations
        (1)-(3) of the paper.
    """
    missing = {1, 2, 3} - set(mean_z_by_position)
    if missing:
        raise ConfigurationError(
            f"missing mean impedance for positions {sorted(missing)}")
    errors = {}
    for name, (ref_pos, other_pos) in ERROR_PAIRS.items():
        errors[name] = relative_error(mean_z_by_position[ref_pos],
                                      mean_z_by_position[other_pos])
    return errors
