"""Cole-Cole dispersion model of tissue impedance.

The frequency dependence of body impedance — the physics behind the
paper's multi-frequency experiment (2 / 10 / 50 / 100 kHz) — is captured
by the single-dispersion Cole model

    Z(w) = Rinf + (R0 - Rinf) / (1 + (j w tau)^alpha)

where ``R0`` is the resistance at DC (current confined to extracellular
fluid), ``Rinf`` the resistance at infinite frequency (current crosses
cell membranes, so intra- and extracellular fluid conduct in parallel),
``tau`` the characteristic time constant, and ``alpha`` in (0, 1] the
dispersion broadening.  The paper's Section V paraphrases exactly this:
below ~50 kHz current flows extracellularly; at and above 50 kHz it
penetrates the membranes.

``|Z|`` is strictly decreasing with frequency — the *measured* rise up
to 10 kHz in the paper's Figs 6-7 is an instrument effect modelled in
:mod:`repro.bioimpedance.pathways`, not a tissue property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ColeModel",
    "from_fluid_resistances",
    "BLOOD",
    "MUSCLE",
    "FAT",
    "THORAX_BULK",
    "ARM_BULK",
]


@dataclass(frozen=True)
class ColeModel:
    """Single-dispersion Cole-Cole impedance element.

    Parameters
    ----------
    r_zero_ohm:
        Resistance at zero frequency (extracellular path only).
    r_inf_ohm:
        Resistance at infinite frequency (extra- and intracellular
        paths in parallel); must be below ``r_zero_ohm``.
    tau_s:
        Characteristic relaxation time constant in seconds.
    alpha:
        Dispersion exponent in (0, 1]; 1 gives an ideal single-pole
        (Debye) relaxation, smaller values broaden the dispersion as
        real tissue does.
    """

    r_zero_ohm: float
    r_inf_ohm: float
    tau_s: float
    alpha: float = 0.85

    def __post_init__(self) -> None:
        if self.r_zero_ohm <= 0:
            raise ConfigurationError(
                f"R0 must be positive, got {self.r_zero_ohm}")
        if not 0.0 < self.r_inf_ohm < self.r_zero_ohm:
            raise ConfigurationError(
                f"Rinf must satisfy 0 < Rinf < R0, got Rinf={self.r_inf_ohm} "
                f"R0={self.r_zero_ohm}")
        if self.tau_s <= 0:
            raise ConfigurationError(f"tau must be positive, got {self.tau_s}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha}")

    @property
    def characteristic_frequency_hz(self) -> float:
        """Frequency of maximal reactance, ``1 / (2 pi tau)``."""
        return 1.0 / (2.0 * np.pi * self.tau_s)

    def impedance(self, frequency_hz) -> np.ndarray:
        """Complex impedance at the given frequency (scalar or array)."""
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f < 0):
            raise ConfigurationError("frequency must be non-negative")
        jwt = (1j * 2.0 * np.pi * f * self.tau_s) ** self.alpha
        return self.r_inf_ohm + (self.r_zero_ohm - self.r_inf_ohm) / (1.0 + jwt)

    def magnitude(self, frequency_hz) -> np.ndarray:
        """``|Z(f)|`` in ohm."""
        return np.abs(self.impedance(frequency_hz))

    def phase_deg(self, frequency_hz) -> np.ndarray:
        """Impedance phase in degrees (negative: capacitive)."""
        return np.degrees(np.angle(self.impedance(frequency_hz)))

    def scaled(self, factor: float) -> "ColeModel":
        """A geometrically scaled copy (both R0 and Rinf multiplied).

        Scaling a segment's length/area multiplies every resistive term
        by the same geometric factor while leaving the relaxation
        dynamics (tau, alpha) untouched.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return ColeModel(self.r_zero_ohm * factor, self.r_inf_ohm * factor,
                         self.tau_s, self.alpha)

    def series(self, other: "ColeModel") -> "SeriesCole":
        """Series combination with another Cole element."""
        return SeriesCole((self, other))


@dataclass(frozen=True)
class SeriesCole:
    """Series chain of Cole elements (impedances add)."""

    elements: tuple

    def __post_init__(self) -> None:
        if not self.elements:
            raise ConfigurationError("series chain needs at least one element")

    def impedance(self, frequency_hz) -> np.ndarray:
        total = None
        for element in self.elements:
            z = element.impedance(frequency_hz)
            total = z if total is None else total + z
        return total

    def magnitude(self, frequency_hz) -> np.ndarray:
        return np.abs(self.impedance(frequency_hz))

    def series(self, other) -> "SeriesCole":
        return SeriesCole(self.elements + (other,))


def from_fluid_resistances(r_extracellular_ohm: float,
                           r_intracellular_ohm: float,
                           membrane_capacitance_f: float,
                           alpha: float = 0.85) -> ColeModel:
    """Build a Cole model from the physiological circuit parameters.

    The classic equivalent circuit is the extracellular resistance
    ``Re`` in parallel with the series pair (intracellular resistance
    ``Ri``, membrane capacitance ``Cm``):

        R0   = Re
        Rinf = Re * Ri / (Re + Ri)
        tau  = (Re + Ri) * Cm
    """
    re_ = float(r_extracellular_ohm)
    ri = float(r_intracellular_ohm)
    cm = float(membrane_capacitance_f)
    if re_ <= 0 or ri <= 0 or cm <= 0:
        raise ConfigurationError(
            "resistances and capacitance must all be positive")
    r_zero = re_
    r_inf = re_ * ri / (re_ + ri)
    tau = (ri + re_) * cm
    return ColeModel(r_zero, r_inf, tau, alpha)


# --- Literature-guided tissue presets ------------------------------------
#
# Absolute values are per-"unit segment" and get geometrically scaled by
# the body model; the ratios R0/Rinf and the characteristic frequencies
# are the physiologically meaningful parts (fc of muscle/thorax sits in
# the tens of kHz, which is why 50 kHz is the standard BIA frequency).

#: Whole blood: low resistivity, mild dispersion.
BLOOD = ColeModel(r_zero_ohm=160.0, r_inf_ohm=100.0, tau_s=4.0e-6, alpha=0.90)

#: Skeletal muscle (longitudinal): the dominant conductor of limbs.
MUSCLE = ColeModel(r_zero_ohm=400.0, r_inf_ohm=180.0, tau_s=3.2e-6, alpha=0.82)

#: Adipose tissue: high resistivity, weak dispersion.
FAT = ColeModel(r_zero_ohm=2200.0, r_inf_ohm=1600.0, tau_s=7.0e-6, alpha=0.75)

#: Effective thorax bulk (lungs + muscle + blood in parallel), normalised
#: to give a ~25-30 ohm base thoracic impedance after geometric scaling.
#: The effective relaxation is placed at fc ~= 15 kHz — lower than
#: single-cell beta dispersion because organ-scale interfaces broaden and
#: shift the bulk response — so that, combined with the instrument's
#: AC-coupling corner (see ``pathways.InstrumentResponse``), the measured
#: curve peaks near 10 kHz exactly as Figs 6-7 of the paper report.
THORAX_BULK = ColeModel(r_zero_ohm=33.0, r_inf_ohm=21.0, tau_s=1.06e-5,
                        alpha=0.80)

#: Effective whole-arm bulk (wrist-to-shoulder), dominating a
#: hand-to-hand measurement: two arms contribute ~85 % of the path.
ARM_BULK = ColeModel(r_zero_ohm=290.0, r_inf_ohm=185.0, tau_s=1.06e-5,
                     alpha=0.82)
