"""Body-composition estimation from multi-frequency bioimpedance.

The paper's Section IV-B explains the physics (lean tissue conducts,
fat and bone resist) and cites the BIA methodology literature (Kyle et
al., Mialich et al.).  The device's multi-frequency capability is
exactly what classic BIA needs:

* at low frequency (2 kHz) current stays extracellular -> R_low maps
  extracellular water (ECW);
* at high frequency (100 kHz) current crosses membranes -> R_high maps
  total body water (TBW);
* regression equations on the impedance index ``height^2 / R`` convert
  resistances into litres, and hydration constants split fat-free from
  fat mass.

All equations operate on *tissue* resistances: callers measuring
through the device must first divide out the instrument gain (see
:class:`~repro.bioimpedance.pathways.InstrumentResponse`).  Regression
coefficients are population averages — the absolute numbers carry the
usual BIA caveats, which is why the functions also expose the raw
compartment ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "total_body_water_l",
    "fluid_compartments",
    "FluidCompartments",
    "fat_free_mass_kg",
    "BodyComposition",
]

#: Fraction of fat-free mass that is water in healthy adults.
HYDRATION_CONSTANT = 0.732


def total_body_water_l(height_cm: float, weight_kg: float,
                       resistance_ohm: float, sex: str = "M") -> float:
    """Total body water from the 50-100 kHz resistance.

    Kushner-Schoeller-style regression on the impedance index
    ``H^2/R`` plus weight:

    * male:   ``TBW = 0.396 * H^2/R + 0.143 * W + 8.399``
    * female: ``TBW = 0.382 * H^2/R + 0.105 * W + 8.315``
    """
    if height_cm <= 0 or weight_kg <= 0 or resistance_ohm <= 0:
        raise ConfigurationError(
            "height, weight and resistance must be positive")
    index = height_cm**2 / resistance_ohm
    if sex.upper() == "M":
        return 0.396 * index + 0.143 * weight_kg + 8.399
    if sex.upper() == "F":
        return 0.382 * index + 0.105 * weight_kg + 8.315
    raise ConfigurationError(f"sex must be 'M' or 'F', got {sex!r}")


@dataclass(frozen=True)
class FluidCompartments:
    """Extracellular/intracellular water split."""

    ecw_fraction: float
    icw_fraction: float
    ecw_over_icw: float


def fluid_compartments(r_low_ohm: float, r_high_ohm: float,
                       ) -> FluidCompartments:
    """ECW/ICW split from a low/high frequency resistance pair.

    In the Cole equivalent circuit the low-frequency resistance is the
    extracellular branch (``Re``) and the high-frequency resistance is
    ``Re`` parallel ``Ri``; hence ``Ri = Re*Rinf / (Re - Rinf)``.
    Water volumes scale inversely with branch resistance (same
    geometry, same resistivity class), so ``ECW/ICW = Ri/Re``.

    A rising ECW fraction is the fluid-overload signature the CHF
    monitoring literature tracks.
    """
    if r_low_ohm <= 0 or r_high_ohm <= 0:
        raise ConfigurationError("resistances must be positive")
    if r_high_ohm >= r_low_ohm:
        raise ConfigurationError(
            f"high-frequency resistance ({r_high_ohm}) must be below the "
            f"low-frequency one ({r_low_ohm}); check the measurement")
    r_intracellular = (r_low_ohm * r_high_ohm
                       / (r_low_ohm - r_high_ohm))
    ecw_over_icw = r_intracellular / r_low_ohm
    ecw_fraction = ecw_over_icw / (1.0 + ecw_over_icw)
    return FluidCompartments(
        ecw_fraction=float(ecw_fraction),
        icw_fraction=float(1.0 - ecw_fraction),
        ecw_over_icw=float(ecw_over_icw),
    )


def fat_free_mass_kg(tbw_l: float,
                     hydration: float = HYDRATION_CONSTANT) -> float:
    """Fat-free mass from total body water via the hydration constant."""
    if tbw_l <= 0:
        raise ConfigurationError("TBW must be positive")
    if not 0.5 < hydration < 0.9:
        raise ConfigurationError(
            f"hydration constant must be physiological, got {hydration}")
    return tbw_l / hydration


@dataclass(frozen=True)
class BodyComposition:
    """Full composition estimate from one multi-frequency measurement."""

    tbw_l: float
    ffm_kg: float
    fat_kg: float
    fat_fraction: float
    compartments: FluidCompartments

    @classmethod
    def from_multifrequency(cls, height_cm: float, weight_kg: float,
                            r_low_ohm: float, r_high_ohm: float,
                            sex: str = "M") -> "BodyComposition":
        """Compose the full estimate from the 2 kHz / 100 kHz pair.

        TBW uses the high-frequency (whole-water) resistance; the
        compartment split uses both.  Fat mass is weight minus
        fat-free mass, floored at zero (regressions can overshoot on
        very lean subjects).
        """
        if weight_kg <= 0:
            raise ConfigurationError("weight must be positive")
        tbw = total_body_water_l(height_cm, weight_kg, r_high_ohm, sex)
        ffm = fat_free_mass_kg(tbw)
        fat = max(0.0, weight_kg - ffm)
        return cls(
            tbw_l=tbw,
            ffm_kg=ffm,
            fat_kg=fat,
            fat_fraction=fat / weight_kg,
            compartments=fluid_compartments(r_low_ohm, r_high_ohm),
        )
