"""Measurement pathways: traditional thoracic vs touch device.

A *pathway* bundles everything between the instrument's terminals: the
chain of body segments the injected current traverses, residual
electrode effects, and how strongly the aortic volume pulse couples into
the measured impedance.  Two pathways reproduce the paper's comparison:

* :class:`ThoracicPathway` — the traditional 4-electrode chest/thorax
  configuration of Fig 1 (current through the whole thorax, wet gel
  electrodes, full cardiac coupling);
* :class:`HandToHandPathway` — the touch device of Fig 2 (current from
  hand to hand through both arms and the upper thorax, dry fingertip
  electrodes, attenuated cardiac coupling, arm-position dependence).

:class:`InstrumentResponse` models the shared front-end sensitivity
S(f): the proprietary current source/demodulator is AC-coupled, so its
effective sensitivity rises with carrier frequency and saturates.  The
product of a rising S(f) with the falling Cole magnitude creates the
non-monotonic measured Z0(f) — increasing up to ~10 kHz and decreasing
beyond — that the paper reports for *both* setups (Figs 6 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bioimpedance.cole import SeriesCole
from repro.bioimpedance.electrodes import (
    ElectrodeModel,
    dry_finger_electrode,
    wet_gel_electrode,
)
from repro.bioimpedance.tissue import BodyGeometry, arm_segment, thorax_segment
from repro.errors import ConfigurationError

__all__ = [
    "InstrumentResponse",
    "ThoracicPathway",
    "HandToHandPathway",
    "POSITION_ARM_FACTORS",
    "position_arm_factor",
]


#: Arm-elevation modifiers of the hand-to-hand path impedance.
#:
#: Position 1 (device held to the chest, forearms relaxed and bent) is
#: the reference.  Position 2 (arms outstretched, parallel to the floor)
#: drains venous blood from the limbs and tenses the shoulder girdle,
#: raising path impedance the most — which is why the paper finds the
#: largest relative error e21 between positions 2 and 1 (Fig 8a).
#: Position 3 (arms hanging by the sides) promotes venous pooling that
#: almost exactly offsets the longer path, leaving impedance close to
#: Position 1 — the paper's smallest error e31 (Fig 8c).
POSITION_ARM_FACTORS = {1: 1.000, 2: 1.130, 3: 1.025}


def position_arm_factor(position: int) -> float:
    """Arm impedance multiplier for a protocol position (1, 2 or 3)."""
    if position not in POSITION_ARM_FACTORS:
        raise ConfigurationError(
            f"position must be one of {sorted(POSITION_ARM_FACTORS)}, "
            f"got {position}")
    return POSITION_ARM_FACTORS[position]


@dataclass(frozen=True)
class InstrumentResponse:
    """Front-end sensitivity versus injection frequency.

    ``gain(f) = f^2 / (f^2 + corner_hz^2)`` — the magnitude response of
    the AC-coupled injection/demodulation chain (a second-order
    high-pass corner).  With the default 3 kHz corner and the bulk
    tissue dispersion at ~15 kHz, the measured |Z| peaks near 10 kHz.
    """

    corner_hz: float = 3000.0

    def __post_init__(self) -> None:
        if self.corner_hz <= 0:
            raise ConfigurationError(
                f"corner frequency must be positive, got {self.corner_hz}")

    def gain(self, frequency_hz) -> np.ndarray:
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0):
            raise ConfigurationError("injection frequency must be positive")
        return f**2 / (f**2 + self.corner_hz**2)


@dataclass(frozen=True)
class ThoracicPathway:
    """Traditional 4-electrode thoracic measurement (paper Fig 1)."""

    geometry: BodyGeometry
    electrode: ElectrodeModel = field(default_factory=wet_gel_electrode)
    #: Fraction of the (already small) electrode impedance that leaks
    #: into a tetrapolar reading through finite amplifier input
    #: impedance and current-source output impedance.
    electrode_leakage: float = 0.004
    #: Aortic volume pulse couples fully into a trans-thoracic
    #: measurement; this scales the synthetic dZ/dt amplitude.
    cardiac_coupling: float = 1.0

    def tissue_chain(self) -> SeriesCole:
        """The body segments the injected current traverses."""
        return SeriesCole((thorax_segment(self.geometry),))

    def impedance(self, frequency_hz) -> np.ndarray:
        """Complex pathway impedance including electrode leakage."""
        z_tissue = self.tissue_chain().impedance(frequency_hz)
        z_leak = self.electrode_leakage * 2.0 * self.electrode.impedance(
            frequency_hz)
        return z_tissue + z_leak

    def measured_z0(self, frequency_hz,
                    instrument: InstrumentResponse = None) -> np.ndarray:
        """Mean measured base impedance |Z0| at the given frequency."""
        instrument = instrument or InstrumentResponse()
        return instrument.gain(frequency_hz) * np.abs(
            self.impedance(frequency_hz))


@dataclass(frozen=True)
class HandToHandPathway:
    """Touch-device measurement: hand -> arm -> thorax -> arm -> hand."""

    geometry: BodyGeometry
    position: int = 1
    electrode: ElectrodeModel = field(default_factory=dry_finger_electrode)
    #: Dry fingertip pads leak more than prepared gel electrodes; still
    #: small in relative terms because the tetrapolar topology rejects
    #: most of it.
    electrode_leakage: float = 0.012
    #: Only a fraction of the aortic pulse appears across the
    #: hand-to-hand path (the arms act as series dividers and the
    #: current skims the upper thorax rather than crossing the aorta).
    cardiac_coupling: float = 0.32

    def __post_init__(self) -> None:
        position_arm_factor(self.position)  # validate

    def tissue_chain(self) -> SeriesCole:
        """Two arms in series with the trans-shoulder thorax path."""
        factor = position_arm_factor(self.position)
        arm = arm_segment(self.geometry).scaled(factor)
        thorax = thorax_segment(self.geometry)
        return SeriesCole((arm, thorax, arm))

    def impedance(self, frequency_hz) -> np.ndarray:
        """Complex pathway impedance including electrode leakage."""
        z_tissue = self.tissue_chain().impedance(frequency_hz)
        z_leak = self.electrode_leakage * 2.0 * self.electrode.impedance(
            frequency_hz)
        return z_tissue + z_leak

    def measured_z0(self, frequency_hz,
                    instrument: InstrumentResponse = None) -> np.ndarray:
        """Mean measured base impedance |Z0| at the given frequency."""
        instrument = instrument or InstrumentResponse()
        return instrument.gain(frequency_hz) * np.abs(
            self.impedance(frequency_hz))

    def with_position(self, position: int) -> "HandToHandPathway":
        """Copy of this pathway in a different arm position."""
        return HandToHandPathway(self.geometry, position, self.electrode,
                                 self.electrode_leakage,
                                 self.cardiac_coupling)
