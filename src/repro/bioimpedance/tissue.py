"""Body geometry and segment scaling.

Maps a subject's anthropometrics onto geometric scale factors for the
bulk tissue models of :mod:`repro.bioimpedance.cole`.  The underlying
relation is the classic BIA observation that segment resistance scales
as ``length / cross-section``, which for whole-body indices reduces to
the familiar ``height^2 / weight`` dependence.

All ratios are documented approximations — they set plausible absolute
levels and, more importantly, plausible *between-subject variation*,
which is what the correlation tables of the paper exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioimpedance.cole import ARM_BULK, THORAX_BULK, ColeModel
from repro.errors import ConfigurationError

__all__ = [
    "BodyGeometry",
    "REFERENCE_GEOMETRY",
    "arm_segment",
    "thorax_segment",
]


@dataclass(frozen=True)
class BodyGeometry:
    """Subject anthropometrics relevant to segment impedance.

    Parameters
    ----------
    height_m:
        Standing height in metres.
    weight_kg:
        Body mass in kilograms.
    body_fat_fraction:
        Fraction of body mass that is adipose tissue, in [0.05, 0.6].
        Fat conducts poorly, so higher fractions raise segment
        impedance at fixed height/weight.
    """

    height_m: float
    weight_kg: float
    body_fat_fraction: float = 0.20

    def __post_init__(self) -> None:
        if not 1.2 <= self.height_m <= 2.3:
            raise ConfigurationError(
                f"height must be a plausible adult value in metres, "
                f"got {self.height_m}")
        if not 30.0 <= self.weight_kg <= 250.0:
            raise ConfigurationError(
                f"weight must be plausible in kg, got {self.weight_kg}")
        if not 0.05 <= self.body_fat_fraction <= 0.6:
            raise ConfigurationError(
                f"body fat fraction must be in [0.05, 0.6], "
                f"got {self.body_fat_fraction}")

    @property
    def bmi(self) -> float:
        """Body-mass index, kg/m^2."""
        return self.weight_kg / self.height_m**2

    @property
    def arm_length_m(self) -> float:
        """Shoulder-to-fingertip length, ~44 % of height."""
        return 0.44 * self.height_m

    @property
    def thorax_path_m(self) -> float:
        """Current path across the thorax between the shoulders,
        ~26 % of height."""
        return 0.26 * self.height_m

    def impedance_index(self) -> float:
        """Dimensionless ``(height^2 / weight)`` index relative to the
        reference subject; > 1 means higher segment impedance."""
        own = self.height_m**2 / self.weight_kg
        ref = (REFERENCE_GEOMETRY.height_m**2
               / REFERENCE_GEOMETRY.weight_kg)
        return own / ref

    def fat_modifier(self) -> float:
        """Multiplicative impedance increase due to adiposity.

        Linearised around the reference 20 % body fat: each additional
        10 % of fat mass raises bulk impedance by ~8 % (lean conductive
        cross-section shrinks).
        """
        return 1.0 + 0.8 * (self.body_fat_fraction
                            - REFERENCE_GEOMETRY.body_fat_fraction)

    def segment_scale(self) -> float:
        """Overall geometric scale factor for bulk tissue models."""
        return self.impedance_index() * self.fat_modifier()


#: The subject the bulk Cole presets were normalised against.
REFERENCE_GEOMETRY = BodyGeometry(height_m=1.75, weight_kg=70.0,
                                  body_fat_fraction=0.20)


def arm_segment(geometry: BodyGeometry) -> ColeModel:
    """Bulk Cole model of one arm, scaled to the subject."""
    return ARM_BULK.scaled(geometry.segment_scale())


def thorax_segment(geometry: BodyGeometry) -> ColeModel:
    """Bulk Cole model of the trans-thoracic path, scaled to the
    subject.

    The thorax cross-section grows faster with mass than the limbs do,
    so thoracic impedance varies less between subjects; the 0.5 exponent
    reflects that damping.
    """
    return THORAX_BULK.scaled(float(np.sqrt(geometry.segment_scale())))
