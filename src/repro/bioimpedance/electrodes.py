"""Electrode-skin interface models.

The decisive difference between the paper's two setups is the electrode
interface: the traditional method uses wet Ag/AgCl electrodes on
prepared chest skin, while the touch device uses dry metal pads under
the fingertips.  Dry contact impedance is orders of magnitude higher at
low frequency and falls roughly capacitively with frequency — this is
what shapes the *measured* Z0-vs-frequency curves of Figs 6-7 and the
per-subject variation of Tables II-IV (skin moisture, contact pressure).

The model is the standard electrode equivalent circuit: a series
resistance ``Rs`` plus the parallel pair (charge-transfer resistance
``Rct``, double-layer capacitance ``Cdl``):

    Z(w) = Rs + Rct / (1 + j w Rct Cdl)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ElectrodeModel",
    "wet_gel_electrode",
    "dry_finger_electrode",
]


@dataclass(frozen=True)
class ElectrodeModel:
    """Single electrode-skin interface.

    Parameters
    ----------
    series_resistance_ohm:
        Ohmic spreading/gel resistance ``Rs``.
    charge_transfer_ohm:
        Faradaic charge-transfer resistance ``Rct`` across the
        skin/electrolyte double layer.
    double_layer_farad:
        Double-layer capacitance ``Cdl``.
    contact_quality:
        Dimensionless multiplier in (0, 1]; 1 is ideal contact.  Lower
        quality (dry skin, light touch) scales ``Rct`` up by ``1/q`` and
        ``Cdl`` down by ``q`` — both effects of reduced effective
        contact area.
    """

    series_resistance_ohm: float
    charge_transfer_ohm: float
    double_layer_farad: float
    contact_quality: float = 1.0

    def __post_init__(self) -> None:
        if self.series_resistance_ohm < 0:
            raise ConfigurationError("series resistance must be >= 0")
        if self.charge_transfer_ohm <= 0:
            raise ConfigurationError("charge-transfer resistance must be > 0")
        if self.double_layer_farad <= 0:
            raise ConfigurationError("double-layer capacitance must be > 0")
        if not 0.0 < self.contact_quality <= 1.0:
            raise ConfigurationError(
                f"contact quality must be in (0, 1], got {self.contact_quality}")

    def impedance(self, frequency_hz) -> np.ndarray:
        """Complex interface impedance at the given frequency."""
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f < 0):
            raise ConfigurationError("frequency must be non-negative")
        rct = self.charge_transfer_ohm / self.contact_quality
        cdl = self.double_layer_farad * self.contact_quality
        omega = 2.0 * np.pi * f
        return self.series_resistance_ohm + rct / (1.0 + 1j * omega * rct * cdl)

    def magnitude(self, frequency_hz) -> np.ndarray:
        """``|Z(f)|`` in ohm."""
        return np.abs(self.impedance(frequency_hz))

    def with_quality(self, contact_quality: float) -> "ElectrodeModel":
        """Copy of this electrode with a different contact quality."""
        return ElectrodeModel(self.series_resistance_ohm,
                              self.charge_transfer_ohm,
                              self.double_layer_farad,
                              contact_quality)


def wet_gel_electrode(contact_quality: float = 1.0) -> ElectrodeModel:
    """Ag/AgCl gel electrode on prepared skin (the traditional setup).

    Contact impedance is a few hundred ohm at 1 kHz and nearly flat over
    the 2-100 kHz band — effectively transparent next to thoracic Z0
    dynamics.
    """
    return ElectrodeModel(series_resistance_ohm=120.0,
                          charge_transfer_ohm=900.0,
                          double_layer_farad=3.0e-7,
                          contact_quality=contact_quality)


def dry_finger_electrode(contact_quality: float = 1.0) -> ElectrodeModel:
    """Dry metal pad under a fingertip (the touch device).

    Tens of kilo-ohm at 1 kHz, falling steeply with frequency as the
    double layer shorts out the charge-transfer branch; by 50-100 kHz
    only the spreading resistance remains.  This steep roll-off is what
    makes the device's low-frequency injection inefficient and produces
    the measured Z0 rise towards 10 kHz in Fig 7.
    """
    return ElectrodeModel(series_resistance_ohm=350.0,
                          charge_transfer_ohm=60_000.0,
                          double_layer_farad=2.2e-8,
                          contact_quality=contact_quality)
