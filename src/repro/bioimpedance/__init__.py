"""Bioimpedance substrate: tissue physics, electrodes and pathways.

Models everything between the instrument terminals and the body: the
Cole-Cole dispersion of bulk tissue, electrode-skin interfaces (wet gel
vs dry fingertip), subject anthropometric scaling, and the two
measurement pathways the paper compares (traditional thoracic,
touch-device hand-to-hand), plus the analysis metrics of the evaluation
(correlation, mean Z0, relative position errors).
"""

from repro.bioimpedance.analysis import (
    ERROR_PAIRS,
    mean_impedance,
    pearson_correlation,
    position_relative_errors,
    relative_error,
)
from repro.bioimpedance.composition import (
    BodyComposition,
    FluidCompartments,
    fat_free_mass_kg,
    fluid_compartments,
    total_body_water_l,
)
from repro.bioimpedance.cole import (
    ARM_BULK,
    BLOOD,
    FAT,
    MUSCLE,
    THORAX_BULK,
    ColeModel,
    from_fluid_resistances,
)
from repro.bioimpedance.electrodes import (
    ElectrodeModel,
    dry_finger_electrode,
    wet_gel_electrode,
)
from repro.bioimpedance.pathways import (
    POSITION_ARM_FACTORS,
    HandToHandPathway,
    InstrumentResponse,
    ThoracicPathway,
    position_arm_factor,
)
from repro.bioimpedance.tissue import (
    REFERENCE_GEOMETRY,
    BodyGeometry,
    arm_segment,
    thorax_segment,
)

__all__ = [
    "ColeModel", "from_fluid_resistances",
    "BLOOD", "MUSCLE", "FAT", "THORAX_BULK", "ARM_BULK",
    "ElectrodeModel", "wet_gel_electrode", "dry_finger_electrode",
    "BodyGeometry", "REFERENCE_GEOMETRY", "arm_segment", "thorax_segment",
    "ThoracicPathway", "HandToHandPathway", "InstrumentResponse",
    "POSITION_ARM_FACTORS", "position_arm_factor",
    "pearson_correlation", "mean_impedance", "relative_error",
    "position_relative_errors", "ERROR_PAIRS",
    "BodyComposition", "FluidCompartments", "total_body_water_l",
    "fluid_compartments", "fat_free_mass_kg",
]
