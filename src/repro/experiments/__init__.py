"""Experiment protocol, study runner and artefact rendering."""

from repro.experiments.protocol import (
    HEMODYNAMICS_FREQUENCY_HZ,
    HEMODYNAMICS_POSITIONS,
    POSITIONS,
    ProtocolConfig,
)
from repro.experiments.study import (
    RecordingAnalysis,
    StudyResult,
    analyse_recording,
    run_study,
)
from repro.experiments.tables import (
    format_table,
    render_batch_summary,
    render_correlation_table,
    render_hemodynamics,
    render_mean_z_series,
    render_relative_errors,
)

__all__ = [
    "ProtocolConfig", "POSITIONS", "HEMODYNAMICS_POSITIONS",
    "HEMODYNAMICS_FREQUENCY_HZ",
    "RecordingAnalysis", "StudyResult", "run_study", "analyse_recording",
    "format_table", "render_correlation_table", "render_mean_z_series",
    "render_relative_errors", "render_hemodynamics",
    "render_batch_summary",
]
