"""Experiment protocol, study runner and artefact rendering."""

from repro.experiments.protocol import (
    HEMODYNAMICS_FREQUENCY_HZ,
    HEMODYNAMICS_POSITIONS,
    POSITIONS,
    ProtocolConfig,
)
from repro.experiments.sharding import (
    StudyShard,
    merge_shards,
    partition_jobs,
    run_study_shard,
)
from repro.experiments.study import (
    RecordingAnalysis,
    StudyResult,
    analyse_recording,
    execute_study_jobs,
    run_study,
    study_jobs,
)
from repro.experiments.tables import (
    format_table,
    render_batch_summary,
    render_correlation_table,
    render_hemodynamics,
    render_mean_z_series,
    render_relative_errors,
)

__all__ = [
    "ProtocolConfig", "POSITIONS", "HEMODYNAMICS_POSITIONS",
    "HEMODYNAMICS_FREQUENCY_HZ",
    "RecordingAnalysis", "StudyResult", "run_study", "analyse_recording",
    "study_jobs", "execute_study_jobs",
    "StudyShard", "partition_jobs", "run_study_shard", "merge_shards",
    "format_table", "render_correlation_table", "render_mean_z_series",
    "render_relative_errors", "render_hemodynamics",
    "render_batch_summary",
]
