"""Shard the study across machines: partition, run, merge.

The protocol's job list (:func:`repro.experiments.study.study_jobs`)
is flat and deterministic, which makes distributing it trivial:
:func:`partition_jobs` deals the list round-robin into ``n_shards``
disjoint slices, :func:`run_study_shard` executes one slice into a
:class:`StudyShard` artifact (serialised by :mod:`repro.io.shards`,
shipped between machines as a single ``.npz``), and
:func:`merge_shards` validates a complete shard set and reassembles
the exact :class:`~repro.experiments.study.StudyResult` the unsharded
run produces — bit-identically, because every job is a pure seeded
function of its tuple and the merge re-inserts analyses in the serial
run's canonical order.

Lifecycle::

    machine i of K:  repro study --shards K --shard-index i --out s_i.npz
    anywhere:        repro merge s_0.npz ... s_K-1.npz
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache import FilterDesignCache
from repro.errors import ConfigurationError, ProtocolError
from repro.experiments.protocol import ProtocolConfig
from repro.experiments.study import (
    StudyResult,
    execute_study_jobs,
    study_jobs,
)
from repro.synth.subject import default_cohort

__all__ = ["StudyShard", "partition_jobs", "run_study_shard",
           "merge_shards"]


def partition_jobs(jobs, n_shards: int, shard_index: int) -> list:
    """Shard ``shard_index`` of the round-robin deal of ``jobs``.

    ``jobs[shard_index::n_shards]`` — deterministic, disjoint, and
    jointly exhaustive over the shard indices; round-robin (rather
    than contiguous blocks) balances the per-subject synthesis cost
    across machines.  The single-machine sibling is
    :func:`repro.core.executor.job_batches`, which must preserve
    contiguity instead.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    if not 0 <= shard_index < n_shards:
        raise ConfigurationError(
            f"shard_index must be in [0, {n_shards}), got {shard_index}")
    return list(jobs)[shard_index::n_shards]


@dataclass
class StudyShard:
    """One machine's slice of a sharded study run.

    Carries everything the merge needs to validate completeness and
    reassemble the unsharded result: the protocol identity (config +
    subject ids), the shard coordinates, and the analyses this shard
    computed (same key scheme as :class:`StudyResult`).
    """

    config: ProtocolConfig
    subject_ids: list
    n_shards: int
    shard_index: int
    #: Total jobs in the *unsharded* protocol (coverage check).
    n_jobs_total: int
    #: (subject_id, position, frequency_hz) -> RecordingAnalysis
    device: dict = field(default_factory=dict)
    #: (subject_id, frequency_hz) -> RecordingAnalysis
    thoracic: dict = field(default_factory=dict)

    @property
    def n_jobs_done(self) -> int:
        """Analyses this shard holds."""
        return len(self.device) + len(self.thoracic)


def run_study_shard(cohort=None, config: Optional[ProtocolConfig] = None,
                    n_shards: int = 1, shard_index: int = 0,
                    verbose: bool = False, n_jobs: Optional[int] = 1,
                    cache: Optional[FilterDesignCache] = None,
                    backend: Optional[str] = "thread") -> StudyShard:
    """Execute one shard of the protocol.

    The job list, its order and its round-robin partition depend only
    on ``(cohort, config, n_shards)``, so any machine given the same
    inputs computes the same slice; fan-out options are as in
    :func:`~repro.experiments.study.run_study`.
    """
    cohort = cohort if cohort is not None else default_cohort()
    config = config or ProtocolConfig()
    jobs = study_jobs(cohort, config)
    shard = StudyShard(config=config,
                       subject_ids=[s.subject_id for s in cohort],
                       n_shards=n_shards, shard_index=shard_index,
                       n_jobs_total=len(jobs))
    selected = partition_jobs(jobs, n_shards, shard_index)
    for store, key, analysis in execute_study_jobs(
            selected, verbose=verbose, n_jobs=n_jobs, cache=cache,
            backend=backend):
        getattr(shard, store)[key] = analysis
    return shard


def _canonical_store_keys(subject_ids, config: ProtocolConfig) -> list:
    """The serial run's insertion order of ``(store, key)`` pairs —
    mirrors :func:`study_jobs` without synthesizing anything."""
    order = []
    for sid in subject_ids:
        for freq in config.frequencies_hz:
            order.append(("thoracic", (sid, float(freq))))
            for position in config.positions:
                order.append(("device", (sid, position, float(freq))))
    return order


def merge_shards(shards) -> StudyResult:
    """Reassemble a complete shard set into the unsharded result.

    Validates that the shards describe one protocol (same config,
    cohort and shard count), that every shard index 0..K-1 appears
    exactly once, and that together they cover every job exactly once
    — then rebuilds the :class:`StudyResult` with analyses inserted in
    the serial run's canonical order.  The output is therefore
    *bit-identical* to ``run_study`` on the same inputs, down to dict
    iteration order.
    """
    shards = list(shards)
    if not shards:
        raise ProtocolError("no shards to merge")
    first = shards[0]
    indices = []
    for shard in shards:
        if shard.config != first.config:
            raise ProtocolError(
                "shards disagree on the protocol configuration")
        if list(shard.subject_ids) != list(first.subject_ids):
            raise ProtocolError("shards disagree on the cohort")
        if shard.n_shards != first.n_shards:
            raise ProtocolError(
                f"shard counts disagree: {shard.n_shards} vs "
                f"{first.n_shards}")
        indices.append(shard.shard_index)
    expected = set(range(first.n_shards))
    if sorted(indices) != sorted(expected) or len(indices) != len(expected):
        missing = sorted(expected - set(indices))
        duplicated = sorted({i for i in indices if indices.count(i) > 1})
        raise ProtocolError(
            f"incomplete shard set: missing {missing}, "
            f"duplicated {duplicated}")

    device: dict = {}
    thoracic: dict = {}
    for shard in shards:
        for store, merged in (("device", device), ("thoracic", thoracic)):
            for key, analysis in getattr(shard, store).items():
                if key in merged:
                    raise ProtocolError(
                        f"job {store}{key} present in more than one "
                        f"shard")
                merged[key] = analysis

    n_merged = len(device) + len(thoracic)
    if n_merged != first.n_jobs_total:
        raise ProtocolError(
            f"merged {n_merged} analyses, protocol has "
            f"{first.n_jobs_total} jobs")

    result = StudyResult(config=first.config,
                         subject_ids=list(first.subject_ids))
    for store, key in _canonical_store_keys(first.subject_ids,
                                            first.config):
        source = device if store == "device" else thoracic
        if key not in source:
            raise ProtocolError(f"missing analysis for {store}{key}")
        getattr(result, store)[key] = source[key]
    return result
