"""Text rendering of the paper's tables and figure series.

Benches print through these helpers so every artefact has the same
shape as in the paper (e.g. "Subjects | Correlation Coefficient" for
Tables II-IV), making paper-vs-measured comparison mechanical.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "format_table",
    "render_correlation_table",
    "render_mean_z_series",
    "render_relative_errors",
    "render_hemodynamics",
    "render_batch_summary",
]


def format_table(headers, rows, title: Optional[str] = None) -> str:
    """Monospace table with a header rule; values are pre-formatted
    strings."""
    headers = [str(h) for h in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row} does not match header width {len(headers)}")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_correlation_table(table: dict, position: int) -> str:
    """Tables II-IV: per-subject correlation for one position."""
    rows = [[f"Subject {sid}", f"{r:.4f}"]
            for sid, r in sorted(table.items())]
    number = {1: "II", 2: "III", 3: "IV"}.get(position, "?")
    return format_table(
        ["Subjects", "Correlation Coefficient"], rows,
        title=(f"TABLE {number}: Correlation Position {position} VS "
               f"Thoracic bioimpedance"))


def render_mean_z_series(series: dict, label: str) -> str:
    """Figs 6-7: mean Z0 per frequency (rows) and subject (columns)."""
    freqs = sorted(series)
    n_subjects = len(series[freqs[0]])
    headers = ["f (kHz)"] + [f"S{i + 1}" for i in range(n_subjects)] + [
        "mean"]
    rows = []
    for freq in freqs:
        values = series[freq]
        rows.append([f"{freq / 1000:g}"]
                    + [f"{v:.2f}" for v in values]
                    + [f"{np.mean(values):.2f}"])
    return format_table(headers, rows, title=label)


def render_relative_errors(errors: dict) -> str:
    """Figs 8a-c: e21/e23/e31 per subject and frequency."""
    blocks = []
    for name in ("e21", "e23", "e31"):
        by_subject = errors[name]
        subject_ids = sorted(by_subject)
        freqs = sorted(next(iter(by_subject.values())))
        headers = ["f (kHz)"] + [f"S{sid}" for sid in subject_ids]
        rows = []
        for freq in freqs:
            rows.append([f"{freq / 1000:g}"]
                        + [f"{by_subject[sid][freq] * 100:+.1f}%"
                           for sid in subject_ids])
        blocks.append(format_table(headers, rows,
                                   title=f"Fig 8 ({name}): relative error"))
    return "\n\n".join(blocks)


def render_hemodynamics(table: dict, position: int) -> str:
    """Fig 9: LVET/PEP/HR per subject for one position."""
    rows = []
    for sid in sorted(table):
        entry = table[sid]
        rows.append([
            f"Subject {sid}",
            f"{entry['lvet_s'] * 1000:.0f}",
            f"{entry['pep_s'] * 1000:.0f}",
            f"{entry['hr_bpm']:.0f}",
        ])
    return format_table(
        ["Subject", "LVET (ms)", "PEP (ms)", "HR (bpm)"], rows,
        title=f"Fig 9: characteristic ICG parameters, Position {position}")


def render_batch_summary(results: Sequence,
                         labels: Optional[Sequence[str]] = None,
                         title: str = "Batch measurement summary") -> str:
    """One row of radio payload per batch-executor result.

    ``results`` are :class:`~repro.core.pipeline.PipelineResult`
    objects (what :func:`repro.core.executor.process_batch` returns);
    ``labels`` name each row (defaults to the batch index).
    """
    results = list(results)
    if labels is None:
        labels = [f"#{i + 1}" for i in range(len(results))]
    if len(labels) != len(results):
        raise ConfigurationError(
            f"{len(labels)} labels for {len(results)} results")
    rows = []
    for label, result in zip(labels, results):
        summary = result.summary()
        rows.append([
            str(label),
            f"{summary['z0_ohm']:.1f}",
            f"{summary['lvet_s'] * 1000:.0f}",
            f"{summary['pep_s'] * 1000:.0f}",
            f"{summary['hr_bpm']:.0f}",
            f"{result.n_beats_detected}",
        ])
    return format_table(
        ["Recording", "Z0 (ohm)", "LVET (ms)", "PEP (ms)", "HR (bpm)",
         "beats"], rows, title=title)
