"""The measurement protocol of Section V.

Five male subjects; the traditional thoracic reference recorded first;
then the touch device in three arm positions (held to the chest, arms
outstretched parallel to the floor, arms down by the sides); each
recording 30 s at fs = 250 Hz; everything repeated at four injection
frequencies (2, 10, 50, 100 kHz).  Systolic-interval analysis (Fig 9)
uses Positions 1 and 2 — the pair with the largest mutual error, i.e.
the worst case — at the 50 kHz frequency the paper selects for
LVET/PEP work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.injector import PAPER_SWEEP_FREQUENCIES_HZ
from repro.errors import ConfigurationError

__all__ = ["ProtocolConfig", "POSITIONS", "HEMODYNAMICS_POSITIONS",
           "HEMODYNAMICS_FREQUENCY_HZ"]

#: The three arm positions of the study.
POSITIONS = (1, 2, 3)

#: Positions used for the LVET/PEP/HR comparison (Fig 9): the worst
#: case pair per the relative-error analysis.
HEMODYNAMICS_POSITIONS = (1, 2)

#: Injection frequency used for systolic intervals (Section IV-B).
HEMODYNAMICS_FREQUENCY_HZ = 50_000.0


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of one protocol run."""

    duration_s: float = 30.0
    fs: float = 250.0
    frequencies_hz: tuple = PAPER_SWEEP_FREQUENCIES_HZ
    positions: tuple = POSITIONS

    def __post_init__(self) -> None:
        if self.duration_s < 8.0:
            raise ConfigurationError(
                "protocol recordings must be at least 8 s for stable "
                "ensembles")
        if self.fs <= 0:
            raise ConfigurationError("fs must be positive")
        if not self.frequencies_hz:
            raise ConfigurationError("need at least one frequency")
        if any(f <= 0 for f in self.frequencies_hz):
            raise ConfigurationError("frequencies must be positive")
        invalid = set(self.positions) - set(POSITIONS)
        if invalid:
            raise ConfigurationError(
                f"unknown positions {sorted(invalid)}")

    def quick(self) -> "ProtocolConfig":
        """A reduced configuration for fast tests (shorter recordings,
        two frequencies)."""
        return ProtocolConfig(duration_s=12.0, fs=self.fs,
                              frequencies_hz=self.frequencies_hz[:2],
                              positions=self.positions)
