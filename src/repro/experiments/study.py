"""The full study runner: synthesize the protocol, regenerate every
table and figure of the paper's evaluation.

One :func:`run_study` call produces a :class:`StudyResult` from which
each artefact is derived:

* ``correlation_table(position)`` — Tables II, III, IV;
* ``thoracic_mean_z()`` — Fig 6;
* ``device_mean_z(position)`` — Figs 7a-c (pairs are just two calls);
* ``relative_errors()`` — Figs 8a-c;
* ``hemodynamics(position)`` — Figs 9a-b.

The correlation statistic is the Pearson coefficient between the
ensemble-averaged ICG beats (device vs thoracic, normalised cardiac
phase), averaged over the four injection frequencies.  The paper does
not spell out its exact computation; this interpretation captures what
the claim is used for — "the touch signal has the same morphology as
the thoracic signal" — and is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

import numpy as np

from repro.bioimpedance.analysis import (
    pearson_correlation,
    position_relative_errors,
)
from repro.core.cache import FilterDesignCache, default_design_cache
from repro.core.context import BeatContext
from repro.core.executor import (
    parallel_map,
    resolve_backend,
    resolve_shm_result,
    will_parallelize,
)
from repro.core.shm import ShmArena, aligned_nbytes
from repro.core.stages import default_stage_graph
from repro.errors import ProtocolError
from repro.experiments.protocol import (
    HEMODYNAMICS_FREQUENCY_HZ,
    HEMODYNAMICS_POSITIONS,
    ProtocolConfig,
)
from repro.icg.ensemble import EnsembleConfig, ensemble_average
from repro.icg.hemodynamics import systolic_intervals
from repro.synth.recording import SynthesisConfig, synthesize_recording
from repro.synth.subject import default_cohort

__all__ = ["RecordingAnalysis", "StudyResult", "run_study",
           "analyse_recording", "study_jobs", "execute_study_jobs"]

#: The study needs the chain only through point detection; ensemble
#: statistics and NaN-tolerant interval summaries are derived here.
_ANALYSIS_GRAPH = default_stage_graph().upto("point_detection")


@dataclass(frozen=True)
class RecordingAnalysis:
    """Derived quantities of one protocol recording."""

    subject_id: int
    setup: str
    position: int
    frequency_hz: float
    mean_z0_ohm: float
    ensemble_beat: np.ndarray
    mean_pep_s: float
    mean_lvet_s: float
    hr_bpm: float
    n_beats: int
    n_failures: int


def analyse_recording(recording,
                      cache: Optional[FilterDesignCache] = None,
                      ) -> RecordingAnalysis:
    """Run the detection chain on one recording and summarise it.

    Uses the stage graph through point detection — the same code path
    as :class:`~repro.core.pipeline.BeatToBeatPipeline` — with filter
    designs shared through ``cache`` (the process-wide default when
    omitted), so a cohort pays each design once.
    """
    fs = recording.fs
    z = recording.channel("z")
    ctx = BeatContext.from_signals(recording.channel("ecg"), z, fs,
                                   cache=cache)
    ctx = _ANALYSIS_GRAPH.run(ctx)
    r_peaks = ctx.r_peak_indices
    icg = ctx.icg
    ensemble = ensemble_average(icg, fs, r_peaks, EnsembleConfig())
    points, failures = ctx.points, ctx.failures
    if points:
        intervals = systolic_intervals(points, fs)
        mean_pep = intervals.mean_pep_s
        mean_lvet = intervals.mean_lvet_s
    else:
        mean_pep = float("nan")
        mean_lvet = float("nan")
    rr = np.diff(r_peaks) / fs
    return RecordingAnalysis(
        subject_id=int(recording.meta["subject_id"]),
        setup=str(recording.meta["setup"]),
        position=int(recording.meta["position"]),
        frequency_hz=float(recording.meta["injection_frequency_hz"]),
        mean_z0_ohm=float(np.mean(z)),
        ensemble_beat=ensemble.waveform,
        mean_pep_s=mean_pep,
        mean_lvet_s=mean_lvet,
        hr_bpm=float(60.0 / rr.mean()) if rr.size else float("nan"),
        n_beats=len(points),
        n_failures=len(failures),
    )


@dataclass
class StudyResult:
    """All analysed recordings of a protocol run, with artefact
    derivations."""

    config: ProtocolConfig
    subject_ids: list
    #: (subject_id, position, frequency_hz) -> RecordingAnalysis
    device: dict = field(default_factory=dict)
    #: (subject_id, frequency_hz) -> RecordingAnalysis
    thoracic: dict = field(default_factory=dict)

    # -- Tables II-IV ----------------------------------------------------

    def correlation(self, subject_id: int, position: int) -> float:
        """Device-vs-thoracic ensemble-beat correlation, averaged over
        the injection frequencies."""
        values = []
        for freq in self.config.frequencies_hz:
            device = self._device(subject_id, position, freq)
            thoracic = self._thoracic(subject_id, freq)
            values.append(pearson_correlation(device.ensemble_beat,
                                              thoracic.ensemble_beat))
        return float(np.mean(values))

    def correlation_table(self, position: int) -> dict:
        """One of Tables II-IV: ``{subject_id: r}`` for a position."""
        return {sid: self.correlation(sid, position)
                for sid in self.subject_ids}

    # -- Figs 6-7 -----------------------------------------------------------

    def thoracic_mean_z(self) -> dict:
        """Fig 6: ``{frequency_hz: [Z0 per subject]}``."""
        return {
            freq: [self._thoracic(sid, freq).mean_z0_ohm
                   for sid in self.subject_ids]
            for freq in self.config.frequencies_hz
        }

    def device_mean_z(self, position: int) -> dict:
        """Fig 7 (one position): ``{frequency_hz: [Z0 per subject]}``."""
        return {
            freq: [self._device(sid, position, freq).mean_z0_ohm
                   for sid in self.subject_ids]
            for freq in self.config.frequencies_hz
        }

    # -- Fig 8 -----------------------------------------------------------

    def relative_errors(self) -> dict:
        """Figs 8a-c: ``{error_name: {subject_id: {freq: value}}}``.

        Errors follow equations (1)-(3) on the per-frequency mean
        device impedances.
        """
        out = {"e21": {}, "e23": {}, "e31": {}}
        for sid in self.subject_ids:
            per_freq = {name: {} for name in out}
            for freq in self.config.frequencies_hz:
                mean_z = {
                    pos: self._device(sid, pos, freq).mean_z0_ohm
                    for pos in self.config.positions
                }
                errors = position_relative_errors(mean_z)
                for name, value in errors.items():
                    per_freq[name][freq] = value
            for name in out:
                out[name][sid] = per_freq[name]
        return out

    def worst_case_error(self) -> float:
        """Conclusion claim: the largest |relative error| anywhere."""
        errors = self.relative_errors()
        worst = 0.0
        for by_subject in errors.values():
            for by_freq in by_subject.values():
                for value in by_freq.values():
                    worst = max(worst, abs(value))
        return worst

    # -- Fig 9 ------------------------------------------------------------

    def hemodynamics(self, position: int,
                     frequency_hz: float = HEMODYNAMICS_FREQUENCY_HZ,
                     ) -> dict:
        """Fig 9: ``{subject_id: {"lvet_s", "pep_s", "hr_bpm"}}``."""
        if position not in HEMODYNAMICS_POSITIONS:
            raise ProtocolError(
                f"the paper evaluates hemodynamics in positions "
                f"{HEMODYNAMICS_POSITIONS}, not {position}")
        table = {}
        for sid in self.subject_ids:
            analysis = self._device(sid, position, frequency_hz)
            table[sid] = {
                "lvet_s": analysis.mean_lvet_s,
                "pep_s": analysis.mean_pep_s,
                "hr_bpm": analysis.hr_bpm,
            }
        return table

    # -- aggregate claims ---------------------------------------------------

    def mean_correlation(self) -> float:
        """Conclusion claim: overall correlation (the paper's ~85 %)."""
        values = []
        for position in self.config.positions:
            values.extend(self.correlation_table(position).values())
        return float(np.mean(values))

    # -- internals ---------------------------------------------------------

    def _device(self, subject_id: int, position: int,
                frequency_hz: float) -> RecordingAnalysis:
        key = (subject_id, position, float(frequency_hz))
        if key not in self.device:
            raise ProtocolError(
                f"no device recording for subject {subject_id}, position "
                f"{position}, {frequency_hz} Hz")
        return self.device[key]

    def _thoracic(self, subject_id: int,
                  frequency_hz: float) -> RecordingAnalysis:
        key = (subject_id, float(frequency_hz))
        if key not in self.thoracic:
            raise ProtocolError(
                f"no thoracic recording for subject {subject_id} at "
                f"{frequency_hz} Hz")
        return self.thoracic[key]


def _run_study_job(job, cache: Optional[FilterDesignCache] = None,
                   verbose: bool = False):
    """One protocol job: synthesize a recording, run the detection
    chain, summarise.  Module-level so the process backend can pickle
    it (``cache=None`` makes each worker use its process-local default
    design cache)."""
    store, key, subject, setup, position, synth = job
    recording = synthesize_recording(subject, setup, position, synth)
    analysis = analyse_recording(recording, cache=cache)
    if verbose and store == "device":
        print(f"analysed subject {subject.subject_id} "
              f"pos {position} "
              f"f={synth.injection_frequency_hz / 1000:.0f} kHz")
    return store, key, analysis


def _run_study_job_shm(item, verbose: bool = False):
    """Process-backend study job with its ensemble waveform routed
    through the shared-memory result plane.

    ``item`` is ``(job, slot)`` where ``slot`` is a pre-reserved
    :class:`~repro.core.shm.ShmDescriptor` — the waveform is written
    into the parent's arena and only the descriptor is pickled home
    (the same scheme as the batch executor's result slots).  A
    waveform that does not fit the slot stays inline; correctness
    never depends on the fast path.
    """
    from repro.core.executor import swap_result_fields

    job, slot = item
    store, key, analysis = _run_study_job(job, cache=None,
                                          verbose=verbose)
    return store, key, swap_result_fields(analysis,
                                          {"ensemble_beat": slot})


def study_jobs(cohort, config: ProtocolConfig) -> list:
    """The protocol's flat, deterministic job list.

    One tuple ``(store, key, subject, setup, position, synth_config)``
    per recording, in canonical order (subject-major, then frequency,
    thoracic before the three device positions).  Every consumer of
    the protocol — :func:`run_study`, the shard runner in
    :mod:`repro.experiments.sharding`, the benches — derives its work
    from this single definition, so a shard partition can never drift
    from the serial run.
    """
    jobs = []
    for subject in cohort:
        for freq in config.frequencies_hz:
            synth = SynthesisConfig(duration_s=config.duration_s,
                                    fs=config.fs,
                                    injection_frequency_hz=freq)
            jobs.append(("thoracic",
                         (subject.subject_id, float(freq)),
                         subject, "thoracic", 1, synth))
            for position in config.positions:
                jobs.append(("device",
                             (subject.subject_id, position, float(freq)),
                             subject, "device", position, synth))
    return jobs


def execute_study_jobs(jobs, verbose: bool = False,
                       n_jobs: Optional[int] = 1,
                       cache: Optional[FilterDesignCache] = None,
                       backend: Optional[str] = "thread") -> list:
    """Run protocol jobs through the batch executor.

    Returns ``(store, key, analysis)`` triples in job order.  Each job
    is a pure function of its tuple (synthesis is seeded per
    subject/setup/position/frequency), so the output is identical
    however the jobs are partitioned or fanned out.
    """
    backend = resolve_backend(backend)
    jobs = list(jobs)
    if cache is None:
        cache = default_design_cache()
    # The design cache holds a lock and cannot cross process
    # boundaries; when processes will actually fork (parallel_map runs
    # serially for one worker or one job), workers fall back to their
    # own process-local default instead.
    will_fork = (backend == "process"
                 and will_parallelize(n_jobs, len(jobs)))
    if not will_fork:
        run_job = partial(_run_study_job, cache=cache, verbose=verbose)
        return parallel_map(run_job, jobs, n_jobs=n_jobs,
                            backend=backend)
    # Forked path: synthesis happens in-worker (jobs are tiny tuples),
    # and the one array-sized result field — the ensemble waveform —
    # comes home through a shared-memory result arena instead of the
    # pipe, reusing the batch executor's descriptor scheme.
    from repro.icg.ensemble import EnsembleConfig

    n_phase = EnsembleConfig().n_phase_samples
    slot_bytes = aligned_nbytes(n_phase * np.dtype(np.float64).itemsize)
    try:
        arena = ShmArena(max(1, len(jobs)) * slot_bytes)
    except OSError:
        # No shared memory available (e.g. a /dev/shm cap): degrade to
        # the pickle plane — slower, never wrong.
        run_job = partial(_run_study_job, cache=None, verbose=verbose)
        return parallel_map(run_job, jobs, n_jobs=n_jobs,
                            backend=backend)
    try:
        items = [(job, arena.reserve((n_phase,), np.float64))
                 for job in jobs]
        triples = parallel_map(
            partial(_run_study_job_shm, verbose=verbose), items,
            n_jobs=n_jobs, backend=backend)
        return [(store, key, resolve_shm_result(analysis, arena))
                for store, key, analysis in triples]
    finally:
        arena.release()


def run_study(cohort=None, config: Optional[ProtocolConfig] = None,
              verbose: bool = False, n_jobs: Optional[int] = 1,
              cache: Optional[FilterDesignCache] = None,
              backend: Optional[str] = "thread") -> StudyResult:
    """Simulate and analyse the complete protocol.

    Every recording is deterministic (seeded per subject/setup/
    position/frequency), so repeated runs produce identical tables —
    including with ``n_jobs > 1``, which fans the per-recording
    synthesis + analysis jobs out over the batch executor
    (``backend="thread"`` or ``"process"``, as in
    :func:`repro.core.executor.parallel_map`).  Thread workers share
    one filter-design ``cache`` (the process-wide default when
    omitted), so the whole protocol designs each filter once; process
    workers each keep a process-local cache — designs are paid once
    per worker, and the GIL-bound analysis scales with cores.

    For cross-machine runs, :mod:`repro.experiments.sharding` executes
    any deterministic partition of the same job list and merges the
    shard artifacts into this exact result.
    """
    cohort = cohort if cohort is not None else default_cohort()
    config = config or ProtocolConfig()
    result = StudyResult(config=config,
                         subject_ids=[s.subject_id for s in cohort])
    jobs = study_jobs(cohort, config)
    for store, key, analysis in execute_study_jobs(
            jobs, verbose=verbose, n_jobs=n_jobs, cache=cache,
            backend=backend):
        getattr(result, store)[key] = analysis
    return result
