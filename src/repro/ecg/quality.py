"""ECG signal-quality metrics.

A touch device must know when the user's grip is poor: these metrics
feed the acquisition loop of Fig 3 (re-prompt the user instead of
reporting hemodynamics from garbage).  All metrics are cheap enough for
the embedded budget modelled in :mod:`repro.device.mcu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp import spectral as _spectral
from repro.errors import ConfigurationError, SignalError

__all__ = [
    "snr_db",
    "flatline_fraction",
    "clipping_fraction",
    "qrs_template_correlation",
    "SignalQuality",
    "assess_quality",
]


def _as_signal(x) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise SignalError("expected a non-empty 1-D signal")
    return x


def snr_db(ecg, fs: float, signal_band=(5.0, 20.0),
           noise_band=(45.0, None)) -> float:
    """Spectral SNR: QRS-band power over high-frequency noise power.

    ``noise_band`` upper edge defaults to Nyquist.  Returns dB; raises
    :class:`SignalError` when either band is empty.
    """
    ecg = _as_signal(ecg)
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    freqs, psd = _spectral.welch(ecg, fs,
                                 nperseg=min(1024, max(64, ecg.size // 4)))
    noise_hi = noise_band[1] if noise_band[1] is not None else fs / 2.0
    p_signal = _spectral.band_power(freqs, psd, *signal_band)
    p_noise = _spectral.band_power(freqs, psd, noise_band[0], noise_hi)
    if p_noise <= 0 or p_signal <= 0:
        raise SignalError("insufficient spectral content to estimate SNR")
    return float(10.0 * np.log10(p_signal / p_noise))


def flatline_fraction(ecg, fs: float, window_s: float = 0.5,
                      threshold: float = 1e-6) -> float:
    """Fraction of the recording whose local peak-to-peak span is below
    ``threshold`` — a lead-off / lost-contact indicator."""
    ecg = _as_signal(ecg)
    window = max(2, int(round(window_s * fs)))
    n_windows = ecg.size // window
    if n_windows == 0:
        return 0.0
    flat = 0
    for k in range(n_windows):
        segment = ecg[k * window:(k + 1) * window]
        if float(segment.max() - segment.min()) < threshold:
            flat += 1
    return flat / n_windows


def clipping_fraction(ecg, rail_fraction: float = 0.999) -> float:
    """Fraction of samples pinned at the extreme values (ADC rails)."""
    ecg = _as_signal(ecg)
    if not 0.5 < rail_fraction <= 1.0:
        raise ConfigurationError("rail_fraction must be in (0.5, 1]")
    lo, hi = ecg.min(), ecg.max()
    if hi == lo:
        return 1.0
    span = hi - lo
    near_hi = ecg >= lo + rail_fraction * span
    near_lo = ecg <= lo + (1.0 - rail_fraction) * span
    return float((near_hi.sum() + near_lo.sum()) / ecg.size)


def qrs_template_correlation(ecg, fs: float, r_peaks) -> float:
    """Mean correlation of each beat against the median beat template.

    Values near 1 mean consistent QRS morphology (good contact); motion
    artifacts and grip changes drag it down.  Needs >= 3 beats.
    """
    ecg = _as_signal(ecg)
    r_peaks = np.asarray(r_peaks, dtype=int)
    if r_peaks.size < 3:
        raise SignalError("need at least three beats for a template")
    half = int(0.12 * fs)
    beats = []
    for r in r_peaks:
        if r - half < 0 or r + half >= ecg.size:
            continue
        beats.append(ecg[r - half: r + half + 1])
    if len(beats) < 3:
        raise SignalError("not enough full beats inside the recording")
    stack = np.vstack(beats)
    template = np.median(stack, axis=0)
    t_center = template - template.mean()
    t_norm = float(np.sqrt(np.sum(t_center**2)))
    if t_norm == 0:
        raise SignalError("degenerate (constant) beat template")
    correlations = []
    for beat in stack:
        b_center = beat - beat.mean()
        b_norm = float(np.sqrt(np.sum(b_center**2)))
        if b_norm == 0:
            correlations.append(0.0)
            continue
        correlations.append(float(np.dot(b_center, t_center)
                                  / (b_norm * t_norm)))
    return float(np.mean(correlations))


@dataclass(frozen=True)
class SignalQuality:
    """Bundle of quality indicators with an overall verdict."""

    snr_db: float
    flatline_fraction: float
    clipping_fraction: float
    template_correlation: float

    @property
    def acceptable(self) -> bool:
        """Conservative gate used by the firmware acquisition loop."""
        return (self.snr_db > 8.0
                and self.flatline_fraction < 0.05
                and self.clipping_fraction < 0.02
                and self.template_correlation > 0.8)


def assess_quality(ecg, fs: float, r_peaks) -> SignalQuality:
    """Compute all quality indicators in one pass."""
    return SignalQuality(
        snr_db=snr_db(ecg, fs),
        flatline_fraction=flatline_fraction(ecg, fs),
        clipping_fraction=clipping_fraction(ecg),
        template_correlation=qrs_template_correlation(ecg, fs, r_peaks),
    )
