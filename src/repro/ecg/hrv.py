"""RR-interval series and heart-rate statistics.

The device reports HR next to Z0/LVET/PEP (the radio payload listed in
Section V), and Fig 9 plots the per-subject heart rate; this module
derives those numbers from detected R peaks, plus the standard
short-term HRV statistics as a natural extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SignalError

__all__ = [
    "rr_intervals",
    "mean_heart_rate_bpm",
    "instantaneous_hr_bpm",
    "HrvSummary",
    "hrv_summary",
    "hrv_from_landmarks",
    "instantaneous_hr_from_landmarks",
]


def rr_intervals(r_times_s, max_rr_s: float = 3.0,
                 min_rr_s: float = 0.25) -> np.ndarray:
    """RR intervals (seconds) from R-peak times, with gross outliers
    (missed/false beats outside ``[min_rr_s, max_rr_s]``) dropped."""
    r_times_s = np.asarray(r_times_s, dtype=float)
    if r_times_s.ndim != 1 or r_times_s.size < 2:
        raise SignalError("need at least two R peaks for RR intervals")
    if np.any(np.diff(r_times_s) <= 0):
        raise SignalError("R-peak times must be strictly increasing")
    rr = np.diff(r_times_s)
    return rr[(rr >= min_rr_s) & (rr <= max_rr_s)]


def mean_heart_rate_bpm(r_times_s) -> float:
    """Mean HR over a recording — the number the device transmits."""
    rr = rr_intervals(r_times_s)
    if rr.size == 0:
        raise SignalError("no physiological RR intervals found")
    return float(60.0 / rr.mean())


def instantaneous_hr_bpm(r_times_s) -> np.ndarray:
    """Beat-to-beat HR series (one value per RR interval)."""
    rr = rr_intervals(r_times_s)
    if rr.size == 0:
        raise SignalError("no physiological RR intervals found")
    return 60.0 / rr


@dataclass(frozen=True)
class HrvSummary:
    """Short-term time-domain HRV statistics."""

    mean_hr_bpm: float
    sdnn_ms: float
    rmssd_ms: float
    pnn50: float
    n_beats: int


def hrv_summary(r_times_s) -> HrvSummary:
    """Time-domain HRV summary from R-peak times.

    SDNN = standard deviation of RR; RMSSD = root-mean-square of
    successive differences; pNN50 = fraction of successive differences
    above 50 ms.
    """
    rr = rr_intervals(r_times_s)
    if rr.size < 3:
        raise SignalError("need at least three RR intervals for HRV")
    rr_ms = rr * 1000.0
    diffs = np.diff(rr_ms)
    return HrvSummary(
        mean_hr_bpm=float(60_000.0 / rr_ms.mean()),
        sdnn_ms=float(rr_ms.std(ddof=1)),
        rmssd_ms=float(np.sqrt(np.mean(diffs**2))),
        pnn50=float(np.mean(np.abs(diffs) > 50.0)) if diffs.size else 0.0,
        n_beats=int(rr.size + 1),
    )


def heart_rate_from_indices(r_indices, fs: float) -> float:
    """Mean HR from R-peak *sample indices* (firmware convenience)."""
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    r_indices = np.asarray(r_indices, dtype=float)
    return mean_heart_rate_bpm(r_indices / fs)


def hrv_from_landmarks(landmarks, fs: float) -> HrvSummary:
    """HRV summary straight from beat-batched landmark columns.

    Consumes the R column of a
    :class:`~repro.icg.batch.BeatLandmarks` (the array twin of the
    detected points list) — the beat-batched entry point for pipelines
    that never materialise per-beat objects.
    """
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    return hrv_summary(np.asarray(landmarks.r, dtype=float) / fs)


def instantaneous_hr_from_landmarks(landmarks, fs: float) -> np.ndarray:
    """Beat-to-beat HR series from beat-batched landmark columns."""
    if fs <= 0:
        raise ConfigurationError("fs must be positive")
    return instantaneous_hr_bpm(np.asarray(landmarks.r, dtype=float)
                                / fs)
