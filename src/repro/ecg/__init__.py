"""ECG processing: the paper's conditioning chain, Pan-Tompkins QRS
detection, signal quality and heart-rate statistics."""

from repro.ecg.hrv import (
    HrvSummary,
    heart_rate_from_indices,
    hrv_summary,
    instantaneous_hr_bpm,
    mean_heart_rate_bpm,
    rr_intervals,
)
from repro.ecg.pan_tompkins import (
    PanTompkinsConfig,
    PanTompkinsDetector,
    detect_r_peaks,
)
from repro.ecg.preprocessing import (
    EcgFilterConfig,
    bandpass,
    preprocess_ecg,
    remove_baseline_wander,
)
from repro.ecg.quality import (
    SignalQuality,
    assess_quality,
    clipping_fraction,
    flatline_fraction,
    qrs_template_correlation,
    snr_db,
)

__all__ = [
    "EcgFilterConfig", "remove_baseline_wander", "bandpass",
    "preprocess_ecg",
    "PanTompkinsConfig", "PanTompkinsDetector", "detect_r_peaks",
    "SignalQuality", "assess_quality", "snr_db", "flatline_fraction",
    "clipping_fraction", "qrs_template_correlation",
    "rr_intervals", "mean_heart_rate_bpm", "instantaneous_hr_bpm",
    "HrvSummary", "hrv_summary", "heart_rate_from_indices",
]
