"""The paper's ECG conditioning chain.

Two stages, exactly as Section IV-A.1 describes:

1. *Baseline-wander removal by morphological filtering* (Sun et al.
   2002): an opening removes peaks, a closing removes the resulting
   pits, and the outcome — the baseline-drift estimate — is subtracted
   from the original signal.
2. *Zero-phase band-pass*: a 32nd-order FIR with cut-offs 0.05 Hz and
   40 Hz, applied forward-backward so the QRS timing used for PEP is
   not skewed by filter delay.

Note on fidelity: a 33-tap FIR at 250 Hz cannot build a sharp 0.05 Hz
edge — the paper relies on the morphological stage for everything below
~1 Hz and uses the FIR mainly as a 40 Hz low-pass.  We implement the
stated design faithfully and verify exactly that division of labour in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp import fir as _fir
from repro.dsp import morphology as _morphology
from repro.errors import ConfigurationError

__all__ = ["EcgFilterConfig", "design_ecg_fir", "remove_baseline_wander",
           "bandpass", "preprocess_ecg", "preprocess_ecg_batch"]


@dataclass(frozen=True)
class EcgFilterConfig:
    """Parameters of the ECG conditioning chain (paper defaults)."""

    fir_order: int = 32
    low_cut_hz: float = 0.05
    high_cut_hz: float = 40.0
    window: str = "hamming"
    #: Structuring-element lengths in seconds for the morphological
    #: baseline estimator (opening, closing); ``None`` derives them from
    #: the sampling rate (0.2 s / 0.3 s per Sun et al.).
    morphology_lengths_s: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.low_cut_hz < self.high_cut_hz:
            raise ConfigurationError(
                f"need 0 < low < high cut-off, got "
                f"[{self.low_cut_hz}, {self.high_cut_hz}]")

    def morphology_lengths(self, fs: float) -> tuple:
        """Structuring-element lengths in (odd) samples."""
        if self.morphology_lengths_s is None:
            return _morphology.default_element_lengths(fs)
        first_s, second_s = self.morphology_lengths_s
        lengths = []
        for seconds in (first_s, second_s):
            samples = max(3, int(round(seconds * fs)))
            samples += 1 - samples % 2
            lengths.append(samples)
        return tuple(lengths)


def design_ecg_fir(fs: float,
                   config: Optional[EcgFilterConfig] = None) -> np.ndarray:
    """Taps of the band-pass FIR for ``(fs, config)``.

    The canonical design expression — both the direct filtering path
    and the pipeline's filter-design cache call this, so the two can
    never drift apart.
    """
    config = config or EcgFilterConfig()
    return _fir.design_bandpass(config.fir_order, config.low_cut_hz,
                                config.high_cut_hz, fs,
                                window=config.window)


def remove_baseline_wander(ecg, fs: float,
                           config: Optional[EcgFilterConfig] = None,
                           ) -> np.ndarray:
    """Morphological baseline correction (stage 1 of the paper chain)."""
    config = config or EcgFilterConfig()
    return _morphology.remove_baseline(ecg, fs,
                                       config.morphology_lengths(fs))


def bandpass(ecg, fs: float, config: Optional[EcgFilterConfig] = None,
             taps: Optional[np.ndarray] = None) -> np.ndarray:
    """Zero-phase FIR band-pass (stage 2 of the paper chain).

    Pre-designed ``taps`` (e.g. from the pipeline's filter-design
    cache) skip the windowed-sinc design; they must match ``(fs,
    config)`` — the caller owns that invariant.
    """
    config = config or EcgFilterConfig()
    if config.high_cut_hz >= fs / 2.0:
        raise ConfigurationError(
            f"high cut-off {config.high_cut_hz} Hz does not fit below "
            f"fs/2 = {fs / 2.0} Hz")
    if taps is None:
        taps = design_ecg_fir(fs, config)
    return _fir.filtfilt_fir(taps, ecg)


def preprocess_ecg(ecg, fs: float,
                   config: Optional[EcgFilterConfig] = None,
                   taps: Optional[np.ndarray] = None) -> np.ndarray:
    """Full paper chain: morphological baseline removal, then the
    zero-phase 0.05-40 Hz FIR band-pass (``taps`` as in
    :func:`bandpass`)."""
    config = config or EcgFilterConfig()
    corrected = remove_baseline_wander(ecg, fs, config)
    return bandpass(corrected, fs, config, taps=taps)


def preprocess_ecg_batch(ecg_rows, fs: float, lengths=None,
                         config: Optional[EcgFilterConfig] = None,
                         taps: Optional[np.ndarray] = None) -> np.ndarray:
    """Row-batched :func:`preprocess_ecg` over a leading recording axis.

    ``ecg_rows`` is a ``(n_recordings, width)`` matrix of zero-stacked
    same-rate ECGs (row ``i`` valid up to ``lengths[i]``).  Both
    stages run batched — morphological baseline removal via
    :func:`repro.dsp.morphology.remove_baseline_batch` (exact) and the
    zero-phase FIR via :func:`repro.dsp.fir.filtfilt_fir_batch`
    (bit-identical by the boundary-patch argument documented there) —
    so row ``i``'s first ``lengths[i]`` outputs equal
    ``preprocess_ecg(ecg_rows[i, :lengths[i]], fs, config, taps)``.
    Raises :class:`~repro.errors.SignalError` for rows too short for
    the uniform filtfilt pad; the cohort planner routes those through
    the per-recording path instead.
    """
    from repro.dsp._signal import check_lengths as _check_lengths

    config = config or EcgFilterConfig()
    if config.high_cut_hz >= fs / 2.0:
        raise ConfigurationError(
            f"high cut-off {config.high_cut_hz} Hz does not fit below "
            f"fs/2 = {fs / 2.0} Hz")
    lengths = _check_lengths(ecg_rows, lengths)
    if taps is None:
        taps = design_ecg_fir(fs, config)
    corrected = _morphology.remove_baseline_batch(
        ecg_rows, fs, lengths, config.morphology_lengths(fs))
    return _fir.filtfilt_fir_batch(taps, corrected, lengths)
