"""Pan-Tompkins real-time QRS detection (Pan & Tompkins, 1985).

The paper detects R peaks with this algorithm and anchors the whole
beat-to-beat ICG analysis on them (PEP is measured from the R wave, and
each RR interval delimits the ICG search window).  The implementation
follows the original publication:

1. band-pass ~5-15 Hz (integer-coefficient cascade at 200 Hz; a
   matched Butterworth elsewhere),
2. five-point derivative,
3. squaring,
4. 150 ms moving-window integration (MWI),
5. adaptive dual thresholds with signal/noise running estimates on
   *both* the MWI and band-passed signals, a 200 ms refractory period,
   T-wave discrimination by slope at < 360 ms, and RR-based search-back
   using the two running RR averages.

Detections are finally refined to the R-peak sample on the input signal
within a +-60 ms window so downstream PEP measurements are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp import fir as _fir
from repro.dsp import iir as _iir
from repro.errors import ConfigurationError, SignalError

__all__ = ["PanTompkinsConfig", "PanTompkinsDetector", "detect_r_peaks",
           "design_qrs_bandpass_sos", "design_mwi_kernel"]


@dataclass(frozen=True)
class PanTompkinsConfig:
    """Tunables of the detector (defaults follow the 1985 paper)."""

    band_hz: tuple = (5.0, 15.0)
    integration_window_s: float = 0.150
    refractory_s: float = 0.200
    twave_window_s: float = 0.360
    search_back: bool = True
    refine_window_s: float = 0.060

    def __post_init__(self) -> None:
        low, high = self.band_hz
        if not 0.0 < low < high:
            raise ConfigurationError(f"invalid band {self.band_hz}")
        for name in ("integration_window_s", "refractory_s",
                     "twave_window_s", "refine_window_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


def design_qrs_bandpass_sos(fs: float,
                            config: Optional[PanTompkinsConfig] = None,
                            ) -> np.ndarray:
    """SOS of the ~5-15 Hz QRS band-pass for ``(fs, config)``.

    The canonical design expression — the detector's constructor and
    the pipeline's filter-design cache both call this, so the two can
    never drift apart.
    """
    config = config or PanTompkinsConfig()
    low, high = config.band_hz
    return _iir.butter_bandpass(2, low, high, fs)


def design_mwi_kernel(fs: float,
                      config: Optional[PanTompkinsConfig] = None,
                      ) -> np.ndarray:
    """Moving-window-integration kernel (150 ms boxcar) for
    ``(fs, config)`` (canonical, as :func:`design_qrs_bandpass_sos`)."""
    config = config or PanTompkinsConfig()
    width = max(1, int(round(config.integration_window_s * fs)))
    return np.ones(width) / width


class PanTompkinsDetector:
    """Stateful detector bound to a sampling rate.

    Use :meth:`detect` for sample indices or :meth:`detect_times` for
    seconds.  The intermediate signals of the last run are kept on the
    instance (``bandpassed``, ``integrated``) because the embedded
    firmware model re-uses them for its operation counting.
    """

    def __init__(self, fs: float,
                 config: Optional[PanTompkinsConfig] = None,
                 bandpass_sos: Optional[np.ndarray] = None,
                 mwi_kernel: Optional[np.ndarray] = None) -> None:
        if fs < 60.0:
            raise ConfigurationError(
                f"Pan-Tompkins needs fs >= 60 Hz to resolve QRS energy, "
                f"got {fs}")
        self.fs = float(fs)
        self.config = config or PanTompkinsConfig()
        low, high = self.config.band_hz
        if high >= self.fs / 2.0:
            raise ConfigurationError(
                f"band upper edge {high} Hz must sit below fs/2")
        # Pre-designed band-pass sections / MWI kernel (e.g. from the
        # pipeline's filter-design cache) skip the design work; they
        # must match (fs, config) — the caller owns that invariant.
        self._sos = (bandpass_sos if bandpass_sos is not None
                     else design_qrs_bandpass_sos(self.fs, self.config))
        self._mwi_kernel = (mwi_kernel if mwi_kernel is not None
                            else design_mwi_kernel(self.fs, self.config))
        self.bandpassed = None
        self.integrated = None

    # --- stages -----------------------------------------------------------

    def _bandpass(self, x: np.ndarray) -> np.ndarray:
        return _iir.sosfilt(self._sos, x)

    def _derivative(self, x: np.ndarray) -> np.ndarray:
        """Five-point derivative: ``(1/8)(2x[n] + x[n-1] - x[n-3] -
        2x[n-4])``, the original integer-friendly stencil."""
        padded = np.concatenate([np.full(4, x[0]), x])
        return (2.0 * padded[4:] + padded[3:-1] - padded[1:-3]
                - 2.0 * padded[:-4]) / 8.0

    def _integrate(self, x: np.ndarray) -> np.ndarray:
        # The MWI is a plain FIR pass; routing it through apply_fir
        # picks up the FFT path when the window is long (high-rate
        # device modes push the 150 ms kernel past the crossover).
        return _fir.apply_fir(self._mwi_kernel, x)

    # --- thresholding ------------------------------------------------------

    def detect(self, ecg) -> np.ndarray:
        """Detect QRS complexes; returns R-peak sample indices."""
        x = np.asarray(ecg, dtype=float)
        if x.ndim != 1:
            raise SignalError(f"expected 1-D ECG, got shape {x.shape}")
        if x.size < int(2 * self.fs):
            raise SignalError(
                "Pan-Tompkins needs at least two seconds of signal "
                f"({int(2 * self.fs)} samples), got {x.size}")
        bandpassed = self._bandpass(x)
        squared = self._derivative(bandpassed) ** 2
        integrated = self._integrate(squared)
        self.bandpassed = bandpassed
        self.integrated = integrated

        peaks = _local_peaks(integrated,
                             min_distance=int(0.2 * self.fs))
        qrs = self._threshold_pass(integrated, bandpassed, peaks,
                                   *self._peak_features(bandpassed,
                                                        peaks))
        return self._refine(x, qrs)

    def detect_times(self, ecg) -> np.ndarray:
        """Detect QRS complexes; returns R-peak times in seconds."""
        return self.detect(ecg) / self.fs

    def _peak_features(self, bp: np.ndarray, peaks: np.ndarray) -> tuple:
        """Per-peak band-pass features, batched.

        The threshold pass consults two windowed maxima at every
        fiducial mark — the band-pass peak within the preceding 100 ms
        and the steepest slope within the preceding 75 ms.  Computing
        them per peak cost a handful of small numpy calls each; here
        the interior peaks' windows are gathered into one
        ``(n_peaks, window)`` view and reduced in a single pass (max
        is reduction-order independent, so the values are bit-equal),
        with only boundary-clamped peaks falling back to the scalar
        expression.  Returns ``({peak: bp_peak}, {peak: slope})``.
        """
        fs = self.fs
        n = bp.size
        w_near = int(0.10 * fs)
        w_slope = int(0.075 * fs)
        abs_bp = np.abs(bp)
        abs_diff = np.abs(np.diff(bp))
        near: dict = {}
        slope: dict = {}
        interior = peaks[(peaks >= w_near) & (peaks >= w_slope)
                         & (peaks >= 1)]
        if interior.size and w_near >= 0 and w_slope >= 1:
            rows = np.lib.stride_tricks.sliding_window_view(
                abs_bp, w_near + 1)[interior - w_near]
            near_vals = rows.max(axis=1)
            rows = np.lib.stride_tricks.sliding_window_view(
                abs_diff, w_slope)[interior - w_slope]
            slope_vals = rows.max(axis=1)
            for i, idx in enumerate(interior):
                near[int(idx)] = float(near_vals[i])
                slope[int(idx)] = float(slope_vals[i])
        for idx in peaks:
            idx = int(idx)
            if idx in near:
                continue
            lo = max(0, idx - w_near)
            hi = min(n, idx + 1)
            near[idx] = (float(np.max(abs_bp[lo:hi]))
                         if hi > lo else 0.0)
            lo = max(0, idx - w_slope)
            segment = bp[lo: idx + 1]
            slope[idx] = (float(np.max(abs_diff[lo:idx]))
                          if segment.size > 1 else 0.0)
        return near, slope

    def _threshold_pass(self, mwi: np.ndarray, bp: np.ndarray,
                        peaks: np.ndarray, bp_near: dict,
                        bp_slope: dict) -> list:
        cfg = self.config
        fs = self.fs
        # Initialise estimates from the first two seconds, as the
        # original algorithm's learning phase does.
        head = slice(0, int(2 * fs))
        spk_i = 0.3 * float(np.max(mwi[head], initial=0.0))
        npk_i = 0.1 * float(np.mean(mwi[head]))
        spk_f = 0.3 * float(np.max(np.abs(bp[head]), initial=0.0))
        npk_f = 0.1 * float(np.mean(np.abs(bp[head])))
        threshold_i = npk_i + 0.25 * (spk_i - npk_i)
        threshold_f = npk_f + 0.25 * (spk_f - npk_f)

        qrs: list = []
        rr_recent: list = []      # last 8 RR intervals (samples)
        rr_selective: list = []   # last 8 "regular" RR intervals
        refractory = int(cfg.refractory_s * fs)
        twave_lim = int(cfg.twave_window_s * fs)

        def bp_peak_near(idx: int) -> float:
            return bp_near[int(idx)]

        def mean_slope_before(idx: int) -> float:
            return bp_slope[int(idx)]

        def accept(idx: int) -> None:
            nonlocal spk_i, spk_f, threshold_i, threshold_f
            spk_i = 0.125 * mwi[idx] + 0.875 * spk_i
            spk_f = 0.125 * bp_peak_near(idx) + 0.875 * spk_f
            if qrs:
                rr = idx - qrs[-1]
                rr_recent.append(rr)
                if len(rr_recent) > 8:
                    rr_recent.pop(0)
                if _rr_is_regular(rr, rr_selective):
                    rr_selective.append(rr)
                    if len(rr_selective) > 8:
                        rr_selective.pop(0)
            qrs.append(idx)
            threshold_i = npk_i + 0.25 * (spk_i - npk_i)
            threshold_f = npk_f + 0.25 * (spk_f - npk_f)

        def reject(idx: int) -> None:
            nonlocal npk_i, npk_f, threshold_i, threshold_f
            npk_i = 0.125 * mwi[idx] + 0.875 * npk_i
            npk_f = 0.125 * bp_peak_near(idx) + 0.875 * npk_f
            threshold_i = npk_i + 0.25 * (spk_i - npk_i)
            threshold_f = npk_f + 0.25 * (spk_f - npk_f)

        def search_back(current: int) -> None:
            """RR-miss rule: if no QRS appeared within 166 % of the
            running RR average, claim the best half-threshold peak in
            the gap (original algorithm, using THRESHOLD/2)."""
            nonlocal spk_i
            if not (cfg.search_back and qrs and rr_recent):
                return
            regular = rr_selective or rr_recent
            # sum/len of small-integer RRs is exact, hence bit-equal
            # to np.mean without the reduction-machinery overhead.
            rr_mean = float(sum(regular) / len(regular))
            if current - qrs[-1] <= 1.66 * rr_mean:
                return
            candidates = [p for p in peaks
                          if qrs[-1] + refractory < p < current - refractory
                          and mwi[p] > 0.5 * threshold_i]
            if candidates:
                best = int(max(candidates, key=lambda p: mwi[p]))
                accept(best)
                spk_i = 0.25 * mwi[best] + 0.75 * spk_i

        last_slope = 0.0
        for idx in peaks:
            search_back(idx)
            if qrs and idx - qrs[-1] < refractory:
                reject(idx)
                continue
            is_signal = (mwi[idx] > threshold_i
                         and bp_peak_near(idx) > threshold_f)
            if is_signal and qrs and idx - qrs[-1] < twave_lim:
                # T-wave discrimination: a T wave has less than half the
                # preceding QRS slope.
                slope = mean_slope_before(idx)
                if slope < 0.5 * last_slope:
                    reject(idx)
                    continue
            if is_signal:
                last_slope = mean_slope_before(idx)
                accept(idx)
            else:
                reject(idx)
        return qrs

    def _refine(self, x: np.ndarray, qrs: list) -> np.ndarray:
        """Snap each detection to the R-peak sample of the input signal.

        The MWI peak lags the R wave by roughly half the integration
        window plus the filter delays, so the search window is centred
        slightly *before* the detection index.
        """
        half = int(self.config.refine_window_s * self.fs)
        group_delay = int((self.config.integration_window_s / 2) * self.fs)
        refined = []
        for idx in qrs:
            centre = idx - group_delay
            lo = max(0, centre - half)
            hi = min(x.size, centre + half + 1)
            if hi <= lo:
                continue
            refined.append(lo + int(np.argmax(x[lo:hi])))
        # Deduplicate (refinement can merge neighbours) while keeping order.
        out: list = []
        min_sep = int(self.config.refractory_s * self.fs)
        for r in refined:
            if not out or r - out[-1] >= min_sep:
                out.append(r)
        return np.asarray(out, dtype=int)


def _local_peaks(x: np.ndarray, min_distance: int) -> np.ndarray:
    """Local maxima at least ``min_distance`` samples apart (the
    fiducial-mark stage of the original algorithm)."""
    candidates = np.flatnonzero(
        (x[1:-1] > x[:-2]) & (x[1:-1] >= x[2:])) + 1
    if candidates.size == 0:
        return candidates
    selected: list = []
    for idx in candidates:
        if selected and idx - selected[-1] < min_distance:
            if x[idx] > x[selected[-1]]:
                selected[-1] = int(idx)
        else:
            selected.append(int(idx))
    return np.asarray(selected, dtype=int)


def _rr_is_regular(rr: int, rr_selective: list) -> bool:
    """RR acceptance test for the selective average (92-116 % band)."""
    if not rr_selective:
        return True
    # Exact for integer RR intervals: identical to np.mean.
    mean = float(sum(rr_selective) / len(rr_selective))
    return 0.92 * mean <= rr <= 1.16 * mean


def detect_r_peaks(ecg, fs: float,
                   config: Optional[PanTompkinsConfig] = None) -> np.ndarray:
    """Convenience wrapper: R-peak sample indices via Pan-Tompkins."""
    return PanTompkinsDetector(fs, config).detect(ecg)
