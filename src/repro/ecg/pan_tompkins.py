"""Pan-Tompkins real-time QRS detection (Pan & Tompkins, 1985).

The paper detects R peaks with this algorithm and anchors the whole
beat-to-beat ICG analysis on them (PEP is measured from the R wave, and
each RR interval delimits the ICG search window).  The implementation
follows the original publication:

1. band-pass ~5-15 Hz (integer-coefficient cascade at 200 Hz; a
   matched Butterworth elsewhere),
2. five-point derivative,
3. squaring,
4. 150 ms moving-window integration (MWI),
5. adaptive dual thresholds with signal/noise running estimates on
   *both* the MWI and band-passed signals, a 200 ms refractory period,
   T-wave discrimination by slope at < 360 ms, and RR-based search-back
   using the two running RR averages.

Detections are finally refined to the R-peak sample on the input signal
within a +-60 ms window so downstream PEP measurements are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp import fir as _fir
from repro.dsp import iir as _iir
from repro.errors import ConfigurationError, SignalError

__all__ = ["PanTompkinsConfig", "PanTompkinsDetector", "detect_r_peaks",
           "design_qrs_bandpass_sos", "design_mwi_kernel"]


@dataclass(frozen=True)
class PanTompkinsConfig:
    """Tunables of the detector (defaults follow the 1985 paper)."""

    band_hz: tuple = (5.0, 15.0)
    integration_window_s: float = 0.150
    refractory_s: float = 0.200
    twave_window_s: float = 0.360
    search_back: bool = True
    refine_window_s: float = 0.060

    def __post_init__(self) -> None:
        low, high = self.band_hz
        if not 0.0 < low < high:
            raise ConfigurationError(f"invalid band {self.band_hz}")
        for name in ("integration_window_s", "refractory_s",
                     "twave_window_s", "refine_window_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


def design_qrs_bandpass_sos(fs: float,
                            config: Optional[PanTompkinsConfig] = None,
                            ) -> np.ndarray:
    """SOS of the ~5-15 Hz QRS band-pass for ``(fs, config)``.

    The canonical design expression — the detector's constructor and
    the pipeline's filter-design cache both call this, so the two can
    never drift apart.
    """
    config = config or PanTompkinsConfig()
    low, high = config.band_hz
    return _iir.butter_bandpass(2, low, high, fs)


def design_mwi_kernel(fs: float,
                      config: Optional[PanTompkinsConfig] = None,
                      ) -> np.ndarray:
    """Moving-window-integration kernel (150 ms boxcar) for
    ``(fs, config)`` (canonical, as :func:`design_qrs_bandpass_sos`)."""
    config = config or PanTompkinsConfig()
    width = max(1, int(round(config.integration_window_s * fs)))
    return np.ones(width) / width


class PanTompkinsDetector:
    """Stateful detector bound to a sampling rate.

    Use :meth:`detect` for sample indices or :meth:`detect_times` for
    seconds.  The intermediate signals of the last run are kept on the
    instance (``bandpassed``, ``integrated``) because the embedded
    firmware model re-uses them for its operation counting.
    """

    def __init__(self, fs: float,
                 config: Optional[PanTompkinsConfig] = None,
                 bandpass_sos: Optional[np.ndarray] = None,
                 mwi_kernel: Optional[np.ndarray] = None) -> None:
        if fs < 60.0:
            raise ConfigurationError(
                f"Pan-Tompkins needs fs >= 60 Hz to resolve QRS energy, "
                f"got {fs}")
        self.fs = float(fs)
        self.config = config or PanTompkinsConfig()
        low, high = self.config.band_hz
        if high >= self.fs / 2.0:
            raise ConfigurationError(
                f"band upper edge {high} Hz must sit below fs/2")
        # Pre-designed band-pass sections / MWI kernel (e.g. from the
        # pipeline's filter-design cache) skip the design work; they
        # must match (fs, config) — the caller owns that invariant.
        self._sos = (bandpass_sos if bandpass_sos is not None
                     else design_qrs_bandpass_sos(self.fs, self.config))
        self._mwi_kernel = (mwi_kernel if mwi_kernel is not None
                            else design_mwi_kernel(self.fs, self.config))
        self.bandpassed = None
        self.integrated = None

    # --- stages -----------------------------------------------------------

    def _bandpass(self, x: np.ndarray) -> np.ndarray:
        return _iir.sosfilt(self._sos, x)

    def _derivative(self, x: np.ndarray) -> np.ndarray:
        """Five-point derivative: ``(1/8)(2x[n] + x[n-1] - x[n-3] -
        2x[n-4])``, the original integer-friendly stencil."""
        padded = np.concatenate([np.full(4, x[0]), x])
        return (2.0 * padded[4:] + padded[3:-1] - padded[1:-3]
                - 2.0 * padded[:-4]) / 8.0

    def _integrate(self, x: np.ndarray) -> np.ndarray:
        # The MWI is a plain FIR pass; routing it through apply_fir
        # picks up the FFT path when the window is long (high-rate
        # device modes push the 150 ms kernel past the crossover).
        return _fir.apply_fir(self._mwi_kernel, x)

    # --- thresholding ------------------------------------------------------

    def detect(self, ecg) -> np.ndarray:
        """Detect QRS complexes; returns R-peak sample indices."""
        x = np.asarray(ecg, dtype=float)
        if x.ndim != 1:
            raise SignalError(f"expected 1-D ECG, got shape {x.shape}")
        if x.size < int(2 * self.fs):
            raise SignalError(
                "Pan-Tompkins needs at least two seconds of signal "
                f"({int(2 * self.fs)} samples), got {x.size}")
        bandpassed = self._bandpass(x)
        squared = self._derivative(bandpassed) ** 2
        integrated = self._integrate(squared)
        self.bandpassed = bandpassed
        self.integrated = integrated

        peaks = _local_peaks(integrated,
                             min_distance=int(0.2 * self.fs))
        qrs = self._threshold_pass(integrated, bandpassed, peaks,
                                   *self._peak_features(bandpassed,
                                                        peaks))
        return self._refine(x, qrs)

    def detect_times(self, ecg) -> np.ndarray:
        """Detect QRS complexes; returns R-peak times in seconds."""
        return self.detect(ecg) / self.fs

    def detect_batch(self, ecg_rows, lengths=None) -> list:
        """Row-batched :meth:`detect` over zero-stacked same-rate ECGs.

        ``ecg_rows`` is ``(n_recordings, width)`` with row ``i`` valid
        up to ``lengths[i]``.  The signal-conditioning half of the
        algorithm — band-pass, five-point derivative, squaring, MWI —
        runs batched over the leading axis (bit-identical per row: the
        IIR scan and FIR/FFT kernels are pinned by the batched-kernel
        parity suite, the derivative and squaring are elementwise);
        the sequential threshold logic then runs per row through the
        *same* ``_local_peaks`` / ``_threshold_pass`` / ``_refine``
        methods :meth:`detect` uses, so detections cannot drift from
        the per-recording path.  Returns a list of R-peak index
        arrays, one per row.  Unlike :meth:`detect`, the
        ``bandpassed`` / ``integrated`` scratch attributes are left
        untouched.
        """
        from repro.dsp._signal import check_lengths as _check_lengths

        x = np.asarray(ecg_rows, dtype=float)
        if x.ndim != 2:
            raise SignalError(
                f"expected a 2-D batch of ECG rows, got shape {x.shape}")
        lengths = _check_lengths(x, lengths)
        if lengths.size and int(lengths.min()) < int(2 * self.fs):
            raise SignalError(
                "Pan-Tompkins needs at least two seconds of signal "
                f"({int(2 * self.fs)} samples) in every row, got "
                f"{int(lengths.min())}")
        if _iir.sosfilt_backend() == "reference":
            # The reference scalar kernel has no batched twin; keep
            # parity with the oracle by running rows individually.
            return [self.detect(x[i, :int(lengths[i])])
                    for i in range(x.shape[0])]
        bandpassed = _iir.sosfilt_batch(self._sos, x, lengths=lengths)
        padded = np.concatenate(
            [np.repeat(bandpassed[:, :1], 4, axis=1), bandpassed], axis=1)
        deriv = (2.0 * padded[:, 4:] + padded[:, 3:-1] - padded[:, 1:-3]
                 - 2.0 * padded[:, :-4]) / 8.0
        squared = deriv ** 2
        integrated = _fir.apply_fir_batch(self._mwi_kernel, squared,
                                          lengths=lengths)
        # Row-batched front half of the threshold logic: the learning-
        # phase statistics (every row is >= the 2 s head, so the head
        # slice is uniform; axis-1 max/mean are bit-equal to the
        # per-row reductions) and the local-maximum candidate mask
        # (pure comparisons).  Only the inherently sequential
        # threshold walk remains per row.
        h = int(2 * self.fs)
        spk_i_rows = 0.3 * np.max(integrated[:, :h], axis=1,
                                  initial=0.0)
        npk_i_rows = 0.1 * np.mean(integrated[:, :h], axis=1)
        abs_head = np.abs(bandpassed[:, :h])
        spk_f_rows = 0.3 * np.max(abs_head, axis=1, initial=0.0)
        npk_f_rows = 0.1 * np.mean(abs_head, axis=1)
        peak_mask = ((integrated[:, 1:-1] > integrated[:, :-2])
                     & (integrated[:, 1:-1] >= integrated[:, 2:]))
        min_distance = int(0.2 * self.fs)
        peaks_per_row = []
        for i in range(x.shape[0]):
            valid = int(lengths[i])
            candidates = np.flatnonzero(
                peak_mask[i, : max(valid - 2, 0)]) + 1
            peaks_per_row.append(
                _local_peaks(integrated[i, :valid],
                             min_distance=min_distance,
                             candidates=candidates))
        features = self._slab_peak_features(bandpassed, lengths,
                                            peaks_per_row)
        qrs_per_row = []
        for i, peaks in enumerate(peaks_per_row):
            valid = int(lengths[i])
            near, slope = (features[i] if features is not None
                           else self._peak_features(
                               bandpassed[i, :valid], peaks))
            qrs_per_row.append(self._threshold_pass(
                integrated[i, :valid], bandpassed[i, :valid], peaks,
                near, slope,
                learning=(float(spk_i_rows[i]), float(npk_i_rows[i]),
                          float(spk_f_rows[i]), float(npk_f_rows[i]))))
        return self._slab_refine(x, lengths, qrs_per_row)

    def _slab_peak_features(self, bandpassed: np.ndarray,
                            lengths: np.ndarray, peaks_per_row: list):
        """Slab-wide :meth:`_peak_features`: one strided gather for
        every interior peak of every row.

        The per-row windows never cross row boundaries (an interior
        peak's window lies inside that row's valid samples), so the
        windowed maxima can be read off one ``sliding_window_view`` of
        the row-flattened ``|bp|`` / ``|diff(bp)|`` matrices — max is
        exact, so the values are bit-equal to the per-row gathers.
        Returns a per-row list of ``(near, slope)`` dicts, or ``None``
        when the slope window degenerates (the per-row fallback
        handles every peak there).
        """
        fs = self.fs
        w_near = int(0.10 * fs)
        w_slope = int(0.075 * fs)
        if w_near < 0 or w_slope < 1:
            return None
        n_rows, width = bandpassed.shape
        abs_bp = np.abs(bandpassed)
        abs_diff = np.abs(np.diff(bandpassed, axis=1))
        counts = [p.size for p in peaks_per_row]
        if sum(counts) == 0:
            return [({}, {}) for _ in peaks_per_row]
        all_peaks = np.concatenate(peaks_per_row)
        row_ids = np.repeat(np.arange(n_rows), counts)
        interior = ((all_peaks >= w_near) & (all_peaks >= w_slope)
                    & (all_peaks >= 1))
        int_rows = row_ids[interior]
        int_peaks = all_peaks[interior]
        near_vals = np.lib.stride_tricks.sliding_window_view(
            abs_bp.ravel(), w_near + 1)[
            int_rows * width + int_peaks - w_near].max(axis=1)
        slope_vals = np.lib.stride_tricks.sliding_window_view(
            abs_diff.ravel(), w_slope)[
            int_rows * (width - 1) + int_peaks - w_slope].max(axis=1)
        bounds = np.searchsorted(int_rows, np.arange(n_rows + 1))
        int_keys = int_peaks.tolist()
        near_list = near_vals.tolist()
        slope_list = slope_vals.tolist()
        features = []
        for i, peaks in enumerate(peaks_per_row):
            s, e = int(bounds[i]), int(bounds[i + 1])
            near = dict(zip(int_keys[s:e], near_list[s:e]))
            slope = dict(zip(int_keys[s:e], slope_list[s:e]))
            if e - s != peaks.size:
                # Boundary-clamped peaks: the same scalar fallback as
                # _peak_features, on this row's slices.
                valid = int(lengths[i])
                row_abs = abs_bp[i, :valid]
                row_diff = abs_diff[i, :valid - 1]
                row_bp = bandpassed[i, :valid]
                for idx in peaks.tolist():
                    if idx in near:
                        continue
                    lo = max(0, idx - w_near)
                    hi = min(valid, idx + 1)
                    near[idx] = (float(np.max(row_abs[lo:hi]))
                                 if hi > lo else 0.0)
                    lo = max(0, idx - w_slope)
                    segment = row_bp[lo: idx + 1]
                    slope[idx] = (float(np.max(row_diff[lo:idx]))
                                  if segment.size > 1 else 0.0)
            features.append((near, slope))
        return features

    def _slab_refine(self, x: np.ndarray, lengths: np.ndarray,
                     qrs_per_row: list) -> list:
        """Slab-wide :meth:`_refine`: one strided argmax over every
        interior search window, per-row fallback for clamped ones.

        Interior windows sit inside their row's valid samples, so the
        row-flattened gather reads exactly the per-row window and
        ``argmax`` keeps the same first-maximum tie-breaking.  The
        per-row dedup walk is unchanged.
        """
        half = int(self.config.refine_window_s * self.fs)
        group_delay = int((self.config.integration_window_s / 2)
                          * self.fs)
        min_sep = int(self.config.refractory_s * self.fs)
        n_rows, width = x.shape
        counts = [len(q) for q in qrs_per_row]
        total = sum(counts)
        snapped = np.zeros(total, dtype=int)
        interior = np.zeros(total, dtype=bool)
        if total:
            all_qrs = np.fromiter(
                (q for row in qrs_per_row for q in row),
                dtype=np.int64, count=total)
            row_ids = np.repeat(np.arange(n_rows), counts)
            centres = all_qrs - group_delay
            valids = lengths[row_ids]
            interior = ((centres - half >= 0)
                        & (centres + half + 1 <= valids))
            if interior.any():
                starts = centres[interior] - half
                windows = np.lib.stride_tricks.sliding_window_view(
                    x.ravel(), 2 * half + 1)[
                    row_ids[interior] * width + starts]
                snapped[interior] = starts + windows.argmax(axis=1)
        detections = []
        pos = 0
        for i, qrs in enumerate(qrs_per_row):
            valid = int(lengths[i])
            refined = []
            for j, idx in enumerate(qrs):
                if interior[pos + j]:
                    refined.append(int(snapped[pos + j]))
                    continue
                centre = int(idx) - group_delay
                lo = max(0, centre - half)
                hi = min(valid, centre + half + 1)
                if hi <= lo:
                    continue
                refined.append(lo + int(np.argmax(x[i, lo:hi])))
            pos += len(qrs)
            out: list = []
            for r in refined:
                if not out or r - out[-1] >= min_sep:
                    out.append(r)
            detections.append(np.asarray(out, dtype=int))
        return detections

    def _peak_features(self, bp: np.ndarray, peaks: np.ndarray) -> tuple:
        """Per-peak band-pass features, batched.

        The threshold pass consults two windowed maxima at every
        fiducial mark — the band-pass peak within the preceding 100 ms
        and the steepest slope within the preceding 75 ms.  Computing
        them per peak cost a handful of small numpy calls each; here
        the interior peaks' windows are gathered into one
        ``(n_peaks, window)`` view and reduced in a single pass (max
        is reduction-order independent, so the values are bit-equal),
        with only boundary-clamped peaks falling back to the scalar
        expression.  Returns ``({peak: bp_peak}, {peak: slope})``.
        """
        fs = self.fs
        n = bp.size
        w_near = int(0.10 * fs)
        w_slope = int(0.075 * fs)
        abs_bp = np.abs(bp)
        abs_diff = np.abs(np.diff(bp))
        near: dict = {}
        slope: dict = {}
        interior = peaks[(peaks >= w_near) & (peaks >= w_slope)
                         & (peaks >= 1)]
        if interior.size and w_near >= 0 and w_slope >= 1:
            rows = np.lib.stride_tricks.sliding_window_view(
                abs_bp, w_near + 1)[interior - w_near]
            near_vals = rows.max(axis=1)
            rows = np.lib.stride_tricks.sliding_window_view(
                abs_diff, w_slope)[interior - w_slope]
            slope_vals = rows.max(axis=1)
            keys = interior.tolist()
            near = dict(zip(keys, near_vals.tolist()))
            slope = dict(zip(keys, slope_vals.tolist()))
        for idx in peaks.tolist():
            if idx in near:
                continue
            lo = max(0, idx - w_near)
            hi = min(n, idx + 1)
            near[idx] = (float(np.max(abs_bp[lo:hi]))
                         if hi > lo else 0.0)
            lo = max(0, idx - w_slope)
            segment = bp[lo: idx + 1]
            slope[idx] = (float(np.max(abs_diff[lo:idx]))
                          if segment.size > 1 else 0.0)
        return near, slope

    def _threshold_pass(self, mwi: np.ndarray, bp: np.ndarray,
                        peaks: np.ndarray, bp_near: dict,
                        bp_slope: dict, learning=None) -> list:
        cfg = self.config
        fs = self.fs
        if learning is None:
            # Initialise estimates from the first two seconds, as the
            # original algorithm's learning phase does.
            head = slice(0, int(2 * fs))
            spk_i = 0.3 * float(np.max(mwi[head], initial=0.0))
            npk_i = 0.1 * float(np.mean(mwi[head]))
            spk_f = 0.3 * float(np.max(np.abs(bp[head]), initial=0.0))
            npk_f = 0.1 * float(np.mean(np.abs(bp[head])))
        else:
            # Precomputed by detect_batch's row-batched reductions
            # (bit-equal to the expressions above).
            spk_i, npk_i, spk_f, npk_f = learning
        threshold_i = npk_i + 0.25 * (spk_i - npk_i)
        threshold_f = npk_f + 0.25 * (spk_f - npk_f)

        qrs: list = []
        rr_recent: list = []      # last 8 RR intervals (samples)
        rr_selective: list = []   # last 8 "regular" RR intervals
        refractory = int(cfg.refractory_s * fs)
        twave_lim = int(cfg.twave_window_s * fs)

        # Every index the walk touches is a fiducial mark, so gather
        # the MWI heights once (vectorized) and run the sequential
        # logic on python scalars — float64 arithmetic rounds the same
        # either way, and the walk drops the per-step ufunc dispatch.
        peak_list = [int(p) for p in peaks]
        mwi_at = dict(zip(peak_list,
                          np.asarray(mwi)[peak_list].tolist()
                          if peak_list else ()))

        def bp_peak_near(idx: int) -> float:
            return bp_near[idx]

        def mean_slope_before(idx: int) -> float:
            return bp_slope[idx]

        def accept(idx: int) -> None:
            nonlocal spk_i, spk_f, threshold_i, threshold_f
            spk_i = 0.125 * mwi_at[idx] + 0.875 * spk_i
            spk_f = 0.125 * bp_peak_near(idx) + 0.875 * spk_f
            if qrs:
                rr = idx - qrs[-1]
                rr_recent.append(rr)
                if len(rr_recent) > 8:
                    rr_recent.pop(0)
                if _rr_is_regular(rr, rr_selective):
                    rr_selective.append(rr)
                    if len(rr_selective) > 8:
                        rr_selective.pop(0)
            qrs.append(idx)
            threshold_i = npk_i + 0.25 * (spk_i - npk_i)
            threshold_f = npk_f + 0.25 * (spk_f - npk_f)

        def reject(idx: int) -> None:
            nonlocal npk_i, npk_f, threshold_i, threshold_f
            npk_i = 0.125 * mwi_at[idx] + 0.875 * npk_i
            npk_f = 0.125 * bp_peak_near(idx) + 0.875 * npk_f
            threshold_i = npk_i + 0.25 * (spk_i - npk_i)
            threshold_f = npk_f + 0.25 * (spk_f - npk_f)

        def search_back(current: int) -> None:
            """RR-miss rule: if no QRS appeared within 166 % of the
            running RR average, claim the best half-threshold peak in
            the gap (original algorithm, using THRESHOLD/2)."""
            nonlocal spk_i
            if not (cfg.search_back and qrs and rr_recent):
                return
            regular = rr_selective or rr_recent
            # sum/len of small-integer RRs is exact, hence bit-equal
            # to np.mean without the reduction-machinery overhead.
            rr_mean = float(sum(regular) / len(regular))
            if current - qrs[-1] <= 1.66 * rr_mean:
                return
            candidates = [p for p in peak_list
                          if qrs[-1] + refractory < p < current - refractory
                          and mwi_at[p] > 0.5 * threshold_i]
            if candidates:
                best = max(candidates, key=mwi_at.__getitem__)
                accept(best)
                spk_i = 0.25 * mwi_at[best] + 0.75 * spk_i

        last_slope = 0.0
        for idx in peak_list:
            search_back(idx)
            if qrs and idx - qrs[-1] < refractory:
                reject(idx)
                continue
            is_signal = (mwi_at[idx] > threshold_i
                         and bp_peak_near(idx) > threshold_f)
            if is_signal and qrs and idx - qrs[-1] < twave_lim:
                # T-wave discrimination: a T wave has less than half the
                # preceding QRS slope.
                slope = mean_slope_before(idx)
                if slope < 0.5 * last_slope:
                    reject(idx)
                    continue
            if is_signal:
                last_slope = mean_slope_before(idx)
                accept(idx)
            else:
                reject(idx)
        return qrs

    def _refine(self, x: np.ndarray, qrs: list) -> np.ndarray:
        """Snap each detection to the R-peak sample of the input signal.

        The MWI peak lags the R wave by roughly half the integration
        window plus the filter delays, so the search window is centred
        slightly *before* the detection index.
        """
        half = int(self.config.refine_window_s * self.fs)
        group_delay = int((self.config.integration_window_s / 2) * self.fs)
        centres = np.asarray(qrs, dtype=int) - group_delay
        w = 2 * half + 1
        interior = (centres - half >= 0) & (centres + half + 1 <= x.size)
        batched: dict = {}
        if w <= x.size and interior.any():
            # One strided argmax over every full-width window; edge
            # windows (clamped at either end) fall back per element.
            starts = centres[interior] - half
            windows = np.lib.stride_tricks.sliding_window_view(x, w)[starts]
            args = starts + windows.argmax(axis=1)
            batched = dict(zip(np.flatnonzero(interior).tolist(),
                               args.tolist()))
        refined = []
        for i, centre in enumerate(centres):
            if i in batched:
                refined.append(batched[i])
                continue
            lo = max(0, centre - half)
            hi = min(x.size, centre + half + 1)
            if hi <= lo:
                continue
            refined.append(lo + int(np.argmax(x[lo:hi])))
        # Deduplicate (refinement can merge neighbours) while keeping order.
        out: list = []
        min_sep = int(self.config.refractory_s * self.fs)
        for r in refined:
            if not out or r - out[-1] >= min_sep:
                out.append(r)
        return np.asarray(out, dtype=int)


def _local_peaks(x: np.ndarray, min_distance: int,
                 candidates=None) -> np.ndarray:
    """Local maxima at least ``min_distance`` samples apart (the
    fiducial-mark stage of the original algorithm).

    ``candidates`` short-circuits the local-maximum scan with indices
    a caller already computed (``detect_batch`` evaluates the
    comparison mask for a whole slab at once); they must equal what
    the scan below would have found.
    """
    if candidates is None:
        candidates = np.flatnonzero(
            (x[1:-1] > x[:-2]) & (x[1:-1] >= x[2:])) + 1
    if candidates.size == 0:
        return candidates
    # One vectorized gather, then a pure-python greedy walk: float64
    # comparisons are bit-identical whether run on numpy or python
    # scalars, and the python loop avoids per-step ufunc dispatch.
    values = x[candidates].tolist()
    selected: list = []
    kept: list = []
    for idx, v in zip(candidates.tolist(), values):
        if selected and idx - selected[-1] < min_distance:
            if v > kept[-1]:
                selected[-1] = idx
                kept[-1] = v
        else:
            selected.append(idx)
            kept.append(v)
    return np.asarray(selected, dtype=int)


def _rr_is_regular(rr: int, rr_selective: list) -> bool:
    """RR acceptance test for the selective average (92-116 % band)."""
    if not rr_selective:
        return True
    # Exact for integer RR intervals: identical to np.mean.
    mean = float(sum(rr_selective) / len(rr_selective))
    return 0.92 * mean <= rr <= 1.16 * mean


def detect_r_peaks(ecg, fs: float,
                   config: Optional[PanTompkinsConfig] = None) -> np.ndarray:
    """Convenience wrapper: R-peak sample indices via Pan-Tompkins."""
    return PanTompkinsDetector(fs, config).detect(ecg)
